"""Async client SDK for the wire transport.

:func:`connect` opens a TCP session to a :class:`~repro.net.server.BrokerServer`
and returns a :class:`BrokerClient`:

* **awaitable requests** — :meth:`~BrokerClient.subscribe`,
  :meth:`~BrokerClient.publish`, … send a framed request carrying a fresh
  request id and await the broker's ``ack`` (request/ack correlation via a
  pending-future table);
* **event stream** — deliveries pushed by the broker surface as an async
  iterator (``async for delivery in client.events()``), each a
  :class:`Delivery` with the event, the matched subscription ids this
  session owns, and the publisher's origin timestamp (so callers can
  measure end-to-end latency);
* **reconnect with resubscribe** — when the connection drops and
  ``reconnect=True``, the client re-dials under a configurable
  :class:`ReconnectBackoff` policy (exponential with a cap and
  decorrelating jitter, so a restarted broker is not greeted by every
  client at the same instant) and replays every subscription it holds
  (``subscribe_many``), so a broker restart — even a SIGKILL — is a
  pause, not a loss of subscription state.  Requests in flight across
  the drop fail with :class:`ConnectionError`; the event iterator keeps
  going.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net import wire
from repro.net.wire import FrameError, ProtocolError
from repro.pubsub.events import Event
from repro.pubsub.subscriptions import Subscription


@dataclass(frozen=True)
class ReconnectBackoff:
    """Retry pacing for dial/reconnect attempts.

    Delay for attempt *n* (1-based) is
    ``min(initial * multiplier**(n-1), max_delay)``, then scaled by a
    uniform factor in ``[1 - jitter, 1 + jitter]`` so a fleet of clients
    reconnecting to a restarted broker spreads out instead of
    thundering in lockstep.  ``max_attempts`` bounds the whole dial;
    ``jitter=0`` makes the schedule deterministic (tests)."""

    initial: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    max_attempts: int = 60

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ValueError("initial delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_delay < self.initial:
            raise ValueError("max_delay must be at least the initial delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The sleep before retrying after failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbering is 1-based")
        base = min(self.initial * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0:
            return base
        spread = (rng.uniform if rng is not None else random.uniform)(
            1.0 - self.jitter, 1.0 + self.jitter
        )
        return base * spread


class BrokerReplyError(RuntimeError):
    """The broker answered a request with a failure ack or error frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


@dataclass(frozen=True)
class Delivery:
    """One event pushed to this session.

    ``origin_ts`` is the publisher-side ``time.monotonic()`` stamp carried
    end to end (0.0 when the publisher did not stamp); ``received_at`` is
    this process's monotonic receive time, so ``received_at - origin_ts``
    is measured end-to-end latency when publisher and subscriber share a
    clock (same host, as in the launcher's localhost topologies).
    """

    event: Event
    subscription_ids: Tuple[str, ...]
    origin_ts: float
    hops: int
    received_at: float


@dataclass
class _PendingTable:
    futures: Dict[int, "asyncio.Future[Any]"] = field(default_factory=dict)
    next_id: int = 1

    def issue(self) -> Tuple[int, "asyncio.Future[Any]"]:
        request_id = self.next_id
        self.next_id += 1
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self.futures[request_id] = future
        return request_id, future

    def resolve(self, request_id: int, result: Any) -> None:
        future = self.futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(result)

    def reject(self, request_id: int, error: BaseException) -> None:
        future = self.futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_exception(error)

    def reject_all(self, error: BaseException) -> None:
        for request_id in list(self.futures):
            self.reject(request_id, error)


class BrokerClient:
    """One client session against a wire broker.  Use :func:`connect`."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str = "client",
        reconnect: bool = True,
        event_queue_limit: int = 4096,
        reconnect_backoff: Optional[ReconnectBackoff] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.reconnect = reconnect
        self.reconnect_backoff = (
            reconnect_backoff if reconnect_backoff is not None else ReconnectBackoff()
        )
        self._backoff_rng = random.Random()
        self.broker_name: Optional[str] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending = _PendingTable()
        self._events: "asyncio.Queue[Optional[Delivery]]" = asyncio.Queue(
            maxsize=event_queue_limit
        )
        self._subscriptions: Dict[str, Subscription] = {}
        self._closed = False
        self._connected = asyncio.Event()
        self._send_lock = asyncio.Lock()

    # -- connection lifecycle ----------------------------------------------

    async def _dial(self, max_attempts: Optional[int] = None) -> None:
        """Open the socket and complete the hello handshake, retrying
        under the session's :class:`ReconnectBackoff` policy — servers
        may still be binding when the launcher starts clients, and a
        killed broker takes its restart time to come back."""
        policy = self.reconnect_backoff
        limit = max_attempts if max_attempts is not None else policy.max_attempts
        attempt = 0
        while True:
            attempt += 1
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError:
                if self._closed or attempt >= limit:
                    raise
                await asyncio.sleep(policy.delay_for(attempt, self._backoff_rng))
        self._reader_task = asyncio.create_task(self._read_loop())
        reply = await self._request(
            lambda rid: wire.hello_frame("client", self.name, rid)
        )
        self.broker_name = (reply or {}).get("broker")
        if self._subscriptions:
            # Reconnect path: replay held subscriptions before anything else.
            held = list(self._subscriptions.values())
            await self._request(lambda rid: wire.subscribe_many_frame(held, rid))
        self._connected.set()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = wire.FrameDecoder()
        try:
            while True:
                data = await self._reader.read(256 * 1024)
                if not data:
                    break
                for payload in decoder.feed(data):
                    self._handle_payload(payload)
        except (ConnectionError, OSError, FrameError):
            pass
        finally:
            self._connected.clear()
            self._pending.reject_all(ConnectionError("broker connection lost"))
            if self._closed or not self.reconnect:
                await self._events.put(None)
            else:
                asyncio.get_running_loop().create_task(self._reconnect())

    async def _reconnect(self) -> None:
        try:
            await self._dial()
        except OSError:
            if not self._closed:
                await self._events.put(None)

    def _handle_payload(self, payload: bytes) -> None:
        try:
            message = wire.decode_payload(payload)
        except ProtocolError:
            return
        if message.msg_type == "ack":
            body = message.body
            if body.get("ok", True):
                self._pending.resolve(message.request_id, body.get("data"))
            else:
                self._pending.reject(
                    message.request_id,
                    BrokerReplyError("nack", str(body.get("error"))),
                )
        elif message.msg_type == "event":
            event = wire.decode_event(message.body["event"])
            delivery = Delivery(
                event=event,
                subscription_ids=tuple(message.body.get("subs", ())),
                origin_ts=float(message.body.get("ots", 0.0) or 0.0),
                hops=int(message.body.get("hops", 0) or 0),
                received_at=time.monotonic(),
            )
            try:
                self._events.put_nowait(delivery)
            except asyncio.QueueFull:
                # The consumer is not draining; drop-oldest keeps the
                # session alive rather than deadlocking the read loop.
                try:
                    self._events.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - racy guard
                    pass
                self._events.put_nowait(delivery)
        elif message.msg_type == "error":
            request_id = message.request_id
            if request_id:
                self._pending.reject(
                    request_id,
                    BrokerReplyError(
                        str(message.body.get("code", "error")),
                        str(message.body.get("message", "")),
                    ),
                )
        # Anything else from the broker is ignored (forward compatibility).

    async def _request(self, build_frame: Any, timeout: float = 30.0) -> Any:
        """Send ``build_frame(request_id)`` and await the correlated ack."""
        if self._writer is None:
            raise ConnectionError("client is not connected")
        request_id, future = self._pending.issue()
        frame = build_frame(request_id)
        async with self._send_lock:
            self._writer.write(frame)
            await self._writer.drain()
        return await asyncio.wait_for(future, timeout=timeout)

    # -- public API --------------------------------------------------------

    async def subscribe(self, subscription: Subscription) -> None:
        """Place a subscription; resolves once the broker acked it (local
        matching active; propagation to peers is in flight)."""
        self._subscriptions[subscription.subscription_id] = subscription
        await self._request(lambda rid: wire.subscribe_frame(subscription, rid))

    async def subscribe_many(self, subscriptions: Sequence[Subscription]) -> int:
        batch = list(subscriptions)
        for subscription in batch:
            self._subscriptions[subscription.subscription_id] = subscription
        reply = await self._request(
            lambda rid: wire.subscribe_many_frame(batch, rid)
        )
        return int((reply or {}).get("count", len(batch)))

    async def unsubscribe(self, subscription_id: str) -> bool:
        self._subscriptions.pop(subscription_id, None)
        reply = await self._request(
            lambda rid: wire.unsubscribe_frame(subscription_id, rid)
        )
        return bool((reply or {}).get("removed", False))

    async def publish(self, event: Event, origin_ts: Optional[float] = None) -> int:
        """Publish one event; returns the ingress broker's local match count."""
        stamp = time.monotonic() if origin_ts is None else origin_ts
        reply = await self._request(
            lambda rid: wire.publish_frame(event, rid, origin_ts=stamp)
        )
        return int((reply or {}).get("matched", 0))

    async def publish_many(
        self, events: Sequence[Event], origin_ts: Optional[float] = None
    ) -> int:
        stamp = time.monotonic() if origin_ts is None else origin_ts
        batch = list(events)
        reply = await self._request(
            lambda rid: wire.publish_many_frame(batch, rid, origin_ts=stamp)
        )
        return int((reply or {}).get("matched", 0))

    async def stats(self) -> Dict[str, Any]:
        """Server-side snapshot: broker name, table sizes, live metrics."""
        reply = await self._request(wire.stats_frame)
        return dict(reply or {})

    async def drain(self) -> None:
        """Ask the broker to drain and shut down (acked before it stops)."""
        await self._request(wire.drain_frame)

    async def next_event(self, timeout: Optional[float] = None) -> Optional[Delivery]:
        """Await the next delivery; ``None`` when the stream closed (or on
        timeout, when one is given)."""
        if timeout is None:
            return await self._events.get()
        try:
            return await asyncio.wait_for(self._events.get(), timeout=timeout)
        except asyncio.TimeoutError:
            return None

    async def events(self):
        """Async iterator over deliveries until the connection closes."""
        while True:
            delivery = await self._events.get()
            if delivery is None:
                return
            yield delivery

    async def close(self) -> None:
        self._closed = True
        self._pending.reject_all(ConnectionError("client closed"))
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            try:
                await asyncio.wait_for(self._reader_task, timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - stuck socket
                self._reader_task.cancel()

    async def __aenter__(self) -> "BrokerClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    @property
    def subscriptions(self) -> List[Subscription]:
        """Subscriptions this client holds (replayed on reconnect)."""
        return list(self._subscriptions.values())


async def connect(
    host: str,
    port: int,
    name: str = "client",
    reconnect: bool = True,
    reconnect_backoff: Optional[ReconnectBackoff] = None,
) -> BrokerClient:
    """Open a client session: dial, handshake, start the read loop."""
    client = BrokerClient(
        host, port, name=name, reconnect=reconnect,
        reconnect_backoff=reconnect_backoff,
    )
    await client._dial()
    return client
