"""Wire transport: a real network face for the broker fabric.

Everything before this package ran on the simulated clock inside one
process — throughput and latency numbers were *modeled*.  ``repro.net``
gives the same routing fabric an asyncio TCP face so they can be
*measured*:

* :mod:`repro.net.msgpack_lite` — a dependency-free msgpack codec
  (wire-compatible with the ``msgpack`` package, used automatically when
  that package is installed);
* :mod:`repro.net.wire` — the typed message protocol: length-prefixed
  frames with a protocol version byte, request ids for acks, and a pure
  codec layer round-tripping ``Subscription`` / ``FilterExpr`` / event IR;
* :mod:`repro.net.server` — :class:`~repro.net.server.BrokerServer`, an
  asyncio TCP server hosting a :class:`~repro.pubsub.broker.Broker`
  routing node: client sessions (subscribe/publish/deliver) and
  broker-to-broker links (subscription propagation + event forwarding)
  ride the same framing, with per-connection write backpressure and
  graceful drain;
* :mod:`repro.net.client` — the async client SDK:
  :func:`~repro.net.client.connect`, awaitable subscribe/publish,
  an async-iterator event stream, request/ack correlation, and
  reconnect-with-resubscribe;
* :mod:`repro.net.launcher` — :class:`~repro.net.launcher.WireCluster`,
  materializing the C1/C2 topology shapes (line/star/tree/ring/mesh) as
  real OS processes wired over localhost TCP, with ``kill``/``restart``
  for SIGKILL churn testing.

The sim-clock :class:`~repro.cluster.broker_cluster.BrokerCluster` stays
the deterministic twin: the wire path is pinned delivery-identical to it
(and to the single-engine oracle) by ``tests/net/test_wire_oracle.py``
and the CI wire-oracle job.
"""

from repro.net.client import BrokerClient, ReconnectBackoff, connect
from repro.net.launcher import BrokerSpec, WireCluster, topology_specs
from repro.net.server import BrokerServer
from repro.net.wire import (
    WIRE_VERSION,
    FrameDecoder,
    Message,
    WireError,
    decode_event,
    decode_filter_expr,
    decode_subscription,
    encode_event,
    encode_filter_expr,
    encode_frame,
    encode_subscription,
)

__all__ = [
    "BrokerClient",
    "BrokerServer",
    "BrokerSpec",
    "FrameDecoder",
    "Message",
    "ReconnectBackoff",
    "WIRE_VERSION",
    "WireCluster",
    "WireError",
    "connect",
    "decode_event",
    "decode_filter_expr",
    "decode_subscription",
    "encode_event",
    "encode_filter_expr",
    "encode_frame",
    "encode_subscription",
    "topology_specs",
]
