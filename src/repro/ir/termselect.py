"""Term selection with Robertson's Offer Weight.

Section 3.3 of the paper: "We chose terms using a modified version of
Robertson's Offer Weight formula which integrates the term frequency
measure into the ranking process."

The classic Offer Weight (a.k.a. Robertson Selection Value) for a term t is

    OW(t) = r * RW(t)

where ``r`` is the number of *relevant* documents containing t and RW is
the relevance weight.  In Reef's setting the "relevant" documents are the
pages in the user's attention history and the collection is the target
archive; the modification weighs the term additionally by its frequency in
the attention history, so terms the user read about repeatedly are
preferred over one-off mentions.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.ir.index import InvertedIndex


@dataclass(frozen=True)
class TermScore:
    """A candidate query term and its selection scores."""

    term: str
    offer_weight: float
    relevance_weight: float
    attention_documents: int
    attention_frequency: int


class OfferWeightSelector:
    """Select the top-N query terms from a user's attention documents.

    Parameters
    ----------
    collection_index:
        Index over the *target* collection (e.g. the video-story archive);
        provides the collection statistics ``N`` and ``n`` (document
        frequency) used in the relevance weight.
    tf_exponent:
        Strength of the paper's modification: the Offer Weight is
        multiplied by ``(1 + log(attention term frequency)) ** tf_exponent``.
        ``0`` recovers the classic Offer Weight.
    min_attention_documents:
        Terms must appear in at least this many attention documents to be
        candidates, which filters out one-off noise terms.
    max_attention_fraction:
        Terms appearing in more than this fraction of the attention
        documents are dropped: a word present on virtually every page the
        user reads (e.g. "today", "report") says nothing about what the
        user is interested in, and the r -> R corner of the relevance
        weight would otherwise inflate its score.
    """

    def __init__(
        self,
        collection_index: InvertedIndex,
        tf_exponent: float = 1.0,
        min_attention_documents: int = 2,
        max_attention_fraction: float = 0.5,
    ) -> None:
        if not 0 < max_attention_fraction <= 1:
            raise ValueError("max_attention_fraction must be in (0, 1]")
        self.collection_index = collection_index
        self.tf_exponent = tf_exponent
        self.min_attention_documents = min_attention_documents
        self.max_attention_fraction = max_attention_fraction

    def relevance_weight(self, term: str, relevant_with_term: int, relevant_total: int) -> float:
        """Robertson / Sparck Jones relevance weight RW(t) with 0.5 smoothing.

        The "relevant" documents here are the user's attention documents,
        which are *not* members of the target collection; they are treated
        as relevant documents added to it (N' = N + R, n' = n + r), which
        simplifies the classic formula to::

            RW(t) = log[ (r + 0.5)(N - n + 0.5) / ((n + 0.5)(R - r + 0.5)) ]

        A term scores highly when it is relatively more common in the
        attention history than in the target collection.
        """
        n_docs = self.collection_index.num_documents
        df = self.collection_index.document_frequency(term)
        r = relevant_with_term
        big_r = relevant_total
        numerator = (r + 0.5) * (n_docs - df + 0.5)
        denominator = (df + 0.5) * (big_r - r + 0.5)
        if denominator <= 0 or numerator <= 0:
            return 0.0
        return math.log(numerator / denominator)

    def score_terms(
        self, attention_documents: Sequence[Dict[str, int]]
    ) -> List[TermScore]:
        """Score every candidate term found in the attention documents.

        ``attention_documents`` is a sequence of term-frequency dictionaries,
        one per attention document (page the user read).
        """
        scores = self._score_terms_unsorted(attention_documents)
        scores.sort(key=lambda score: (-score.offer_weight, score.term))
        return scores

    def _score_terms_unsorted(
        self, attention_documents: Sequence[Dict[str, int]]
    ) -> List[TermScore]:
        relevant_total = len(attention_documents)
        if relevant_total == 0:
            return []
        doc_counts: Dict[str, int] = {}
        frequencies: Dict[str, int] = {}
        for term_freqs in attention_documents:
            for term, frequency in term_freqs.items():
                doc_counts[term] = doc_counts.get(term, 0) + 1
                frequencies[term] = frequencies.get(term, 0) + frequency

        scores: List[TermScore] = []
        max_documents = self.max_attention_fraction * relevant_total
        for term, r in doc_counts.items():
            if r < self.min_attention_documents:
                continue
            if relevant_total > 4 and r > max_documents:
                continue
            if self.collection_index.document_frequency(term) == 0:
                # Terms absent from the target collection cannot retrieve
                # anything; skip them so the quota of N terms is not wasted.
                continue
            rw = self.relevance_weight(term, r, relevant_total)
            if rw <= 0:
                continue
            offer = r * rw
            if self.tf_exponent:
                tf_boost = (1.0 + math.log(frequencies[term])) ** self.tf_exponent
                offer *= tf_boost
            scores.append(
                TermScore(
                    term=term,
                    offer_weight=offer,
                    relevance_weight=rw,
                    attention_documents=r,
                    attention_frequency=frequencies[term],
                )
            )
        return scores

    def select(
        self,
        attention_documents: Sequence[Dict[str, int]],
        n_terms: int,
    ) -> List[TermScore]:
        """Return the top ``n_terms`` terms by (modified) Offer Weight.

        Heap-based top-k selection: the query builder only ever needs the
        first ``n_terms`` entries, so the candidate list is never fully
        sorted (O(candidates log n_terms)).
        """
        if n_terms <= 0:
            raise ValueError("n_terms must be positive")
        return heapq.nsmallest(
            n_terms,
            self._score_terms_unsorted(attention_documents),
            key=lambda score: (-score.offer_weight, score.term),
        )

    def build_query(
        self,
        attention_documents: Sequence[Dict[str, int]],
        n_terms: int,
        weighted: bool = True,
    ) -> Dict[str, float]:
        """Build a (possibly weighted) query dictionary term -> weight."""
        selected = self.select(attention_documents, n_terms)
        if weighted:
            return {score.term: score.relevance_weight for score in selected}
        return {score.term: 1.0 for score in selected}


def attention_term_vectors(
    texts: Sequence[str], analyzer: Optional[object] = None
) -> List[Dict[str, int]]:
    """Analyze raw attention texts into per-document term-frequency vectors."""
    from repro.ir.tokenize import TextAnalyzer

    analyzer = analyzer if analyzer is not None else TextAnalyzer()
    return [dict(analyzer.analyze(text).term_frequencies) for text in texts]
