"""Ranking functions: TF-IDF and Okapi BM25.

The paper ranks video news stories with "the BM25 algorithm [16] with
parameters trained from a previous experiment [9]"; the default ``k1`` and
``b`` here follow the usual trained values for news-like text.  TF-IDF is
provided as a secondary ranker used in ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.ir.index import InvertedIndex


@dataclass(frozen=True)
class RankedResult:
    """A scored document in a result list."""

    doc_id: str
    score: float
    rank: int


class _BaseRanker:
    """Shared query-handling for index-backed rankers."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def _query_terms(self, query) -> List[str]:
        if isinstance(query, str):
            return self.index.analyzer.analyze_terms(query)
        return list(query)

    def rank(self, query, limit: Optional[int] = None) -> List[RankedResult]:
        """Rank all candidate documents for ``query`` (string or term list)."""
        terms = self._query_terms(query)
        scores = self.score_all(terms)
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ordered = ordered[:limit]
        return [
            RankedResult(doc_id=doc_id, score=score, rank=position)
            for position, (doc_id, score) in enumerate(ordered, start=1)
        ]

    def score_all(self, terms: Sequence[str]) -> Dict[str, float]:
        raise NotImplementedError


class TfIdfRanker(_BaseRanker):
    """Classic cosine-free TF-IDF accumulation (ltc-style weighting)."""

    def score_all(self, terms: Sequence[str]) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        n = self.index.num_documents
        if n == 0:
            return scores
        for term in terms:
            df = self.index.document_frequency(term)
            if df == 0:
                continue
            idf = math.log((n + 1) / (df + 0.5))
            for posting in self.index.postings(term):
                tf_weight = 1.0 + math.log(posting.term_frequency)
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + tf_weight * idf
        # Normalize by document length so long documents do not dominate.
        for doc_id in list(scores):
            length = self.index.document_length(doc_id)
            if length > 0:
                scores[doc_id] /= math.sqrt(length)
        return scores


class BM25Ranker(_BaseRanker):
    """Okapi BM25 (Robertson & Sparck Jones style weighting).

    score(d, q) = sum_t idf(t) * tf(t,d) * (k1 + 1)
                  / (tf(t,d) + k1 * (1 - b + b * |d| / avgdl))

    with the standard Robertson-Sparck Jones idf
    ``log((N - df + 0.5) / (df + 0.5) + 1)`` which is always positive.
    Optional query-term weights support weighted queries built from the
    Offer-Weight term selector.
    """

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75) -> None:
        super().__init__(index)
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0 <= b <= 1:
            raise ValueError("b must be within [0, 1]")
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        if n == 0:
            return 0.0
        return math.log((n - df + 0.5) / (df + 0.5) + 1.0)

    def score_all(
        self,
        terms: Sequence[str],
        term_weights: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        avgdl = self.index.average_document_length
        if avgdl == 0:
            return scores
        for term in terms:
            idf = self.idf(term)
            if idf <= 0:
                continue
            weight = 1.0 if term_weights is None else term_weights.get(term, 1.0)
            for posting in self.index.postings(term):
                tf = posting.term_frequency
                doc_length = self.index.document_length(posting.doc_id)
                denominator = tf + self.k1 * (1 - self.b + self.b * doc_length / avgdl)
                contribution = idf * weight * tf * (self.k1 + 1) / denominator
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + contribution
        return scores

    def rank_weighted(
        self,
        term_weights: Dict[str, float],
        limit: Optional[int] = None,
    ) -> List[RankedResult]:
        """Rank using a weighted query (term -> weight)."""
        scores = self.score_all(list(term_weights), term_weights=term_weights)
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ordered = ordered[:limit]
        return [
            RankedResult(doc_id=doc_id, score=score, rank=position)
            for position, (doc_id, score) in enumerate(ordered, start=1)
        ]


def merge_rankings(
    rankings: Iterable[List[RankedResult]], weights: Optional[Sequence[float]] = None
) -> List[RankedResult]:
    """Combine several rankings by weighted reciprocal-rank fusion.

    Used by the collaborative recommender to merge recommendation lists
    contributed by several peers in a group.
    """
    ranking_list = list(rankings)
    if weights is None:
        weights = [1.0] * len(ranking_list)
    if len(weights) != len(ranking_list):
        raise ValueError("weights must match the number of rankings")
    fused: Dict[str, float] = {}
    for ranking, weight in zip(ranking_list, weights):
        for result in ranking:
            fused[result.doc_id] = fused.get(result.doc_id, 0.0) + weight / (
                60.0 + result.rank
            )
    ordered = sorted(fused.items(), key=lambda item: (-item[1], item[0]))
    return [
        RankedResult(doc_id=doc_id, score=score, rank=position)
        for position, (doc_id, score) in enumerate(ordered, start=1)
    ]
