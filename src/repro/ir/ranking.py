"""Ranking functions: TF-IDF and Okapi BM25.

The paper ranks video news stories with "the BM25 algorithm [16] with
parameters trained from a previous experiment [9]"; the default ``k1`` and
``b`` here follow the usual trained values for news-like text.  TF-IDF is
provided as a secondary ranker used in ablation benchmarks.

Hot-path notes (see PERFORMANCE.md): scoring iterates the index's raw
posting dictionaries (``InvertedIndex.postings_map``) in a single pass over
local variables — no per-call :class:`~repro.ir.index.Posting` allocation,
no posting-list sorting — with idf and BM25 length norms cached per index
``version``.  When a result ``limit`` is set, ``rank``/``rank_weighted``
and ``merge_rankings`` use heap-based top-k selection (O(n log k)) instead
of sorting every scored document.  ``naive_bm25_score_all`` and
``naive_tfidf_score_all`` keep the seed's straightforward loops as the
reference implementations the property tests compare against.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.index import InvertedIndex


@dataclass(frozen=True)
class RankedResult:
    """A scored document in a result list."""

    doc_id: str
    score: float
    rank: int


def _top_items(scores: Dict[str, float], limit: Optional[int]) -> List[Tuple[str, float]]:
    """Items of ``scores`` ordered by (-score, doc_id), truncated to ``limit``.

    Uses a heap when ``limit`` is set and smaller than the candidate set,
    which turns the O(n log n) full sort into O(n log k).
    """
    key = lambda item: (-item[1], item[0])
    if limit is not None and 0 <= limit < len(scores):
        return heapq.nsmallest(limit, scores.items(), key=key)
    return sorted(scores.items(), key=key)


def _to_results(ordered: Sequence[Tuple[str, float]]) -> List[RankedResult]:
    return [
        RankedResult(doc_id=doc_id, score=score, rank=position)
        for position, (doc_id, score) in enumerate(ordered, start=1)
    ]


class _BaseRanker:
    """Shared query-handling for index-backed rankers."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index
        self._idf_cache: Dict[str, float] = {}
        self._cache_version = -1

    def _query_terms(self, query) -> List[str]:
        if isinstance(query, str):
            return self.index.analyzer.analyze_terms(query)
        return list(query)

    def _refresh_cache(self) -> None:
        """Drop derived statistics when the index has mutated since last use."""
        version = self.index.version
        if version != self._cache_version:
            self._idf_cache.clear()
            self._cache_version = version

    def rank(self, query, limit: Optional[int] = None) -> List[RankedResult]:
        """Rank all candidate documents for ``query`` (string or term list)."""
        terms = self._query_terms(query)
        scores = self.score_all(terms)
        return _to_results(_top_items(scores, limit))

    def score_all(self, terms: Sequence[str]) -> Dict[str, float]:
        raise NotImplementedError


class TfIdfRanker(_BaseRanker):
    """Classic cosine-free TF-IDF accumulation (ltc-style weighting)."""

    def score_all(self, terms: Sequence[str]) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        index = self.index
        n = index.num_documents
        if n == 0:
            return scores
        self._refresh_cache()
        idf_cache = self._idf_cache
        log = math.log
        scores_get = scores.get
        for term in terms:
            idf = idf_cache.get(term)
            if idf is None:
                df = index.document_frequency(term)
                idf = log((n + 1) / (df + 0.5)) if df else 0.0
                idf_cache[term] = idf
            if idf == 0.0:
                continue
            for doc_id, tf in index.postings_map(term).items():
                scores[doc_id] = scores_get(doc_id, 0.0) + (1.0 + log(tf)) * idf
        # Normalize by document length so long documents do not dominate.
        lengths = index.doc_length_map()
        sqrt = math.sqrt
        for doc_id in scores:
            length = lengths.get(doc_id, 0)
            if length > 0:
                scores[doc_id] /= sqrt(length)
        return scores


class BM25Ranker(_BaseRanker):
    """Okapi BM25 (Robertson & Sparck Jones style weighting).

    score(d, q) = sum_t idf(t) * tf(t,d) * (k1 + 1)
                  / (tf(t,d) + k1 * (1 - b + b * |d| / avgdl))

    with the standard Robertson-Sparck Jones idf
    ``log((N - df + 0.5) / (df + 0.5) + 1)`` which is always positive.
    Optional query-term weights support weighted queries built from the
    Offer-Weight term selector.
    """

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75) -> None:
        super().__init__(index)
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0 <= b <= 1:
            raise ValueError("b must be within [0, 1]")
        self.k1 = k1
        self.b = b
        # doc_id -> k1 * (1 - b + b * |d| / avgdl), cached per index version.
        self._norm_cache: Dict[str, float] = {}

    def _refresh_cache(self) -> None:
        version = self.index.version
        if version != self._cache_version:
            self._idf_cache.clear()
            self._norm_cache.clear()
            self._cache_version = version

    def idf(self, term: str) -> float:
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        if n == 0:
            return 0.0
        return math.log((n - df + 0.5) / (df + 0.5) + 1.0)

    def score_all(
        self,
        terms: Sequence[str],
        term_weights: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        index = self.index
        avgdl = index.average_document_length
        if avgdl == 0:
            return scores
        self._refresh_cache()
        n = index.num_documents
        k1 = self.k1
        k1_plus_1 = k1 + 1.0
        base_norm = k1 * (1.0 - self.b)
        length_coef = k1 * self.b / avgdl
        idf_cache = self._idf_cache
        norms = self._norm_cache
        lengths = index.doc_length_map()
        log = math.log
        scores_get = scores.get
        norms_get = norms.get
        for term in terms:
            idf = idf_cache.get(term)
            if idf is None:
                df = index.document_frequency(term)
                idf = log((n - df + 0.5) / (df + 0.5) + 1.0)
                idf_cache[term] = idf
            if idf <= 0:
                continue
            weight = 1.0 if term_weights is None else term_weights.get(term, 1.0)
            multiplier = idf * weight * k1_plus_1
            for doc_id, tf in index.postings_map(term).items():
                norm = norms_get(doc_id)
                if norm is None:
                    norm = base_norm + length_coef * lengths[doc_id]
                    norms[doc_id] = norm
                scores[doc_id] = scores_get(doc_id, 0.0) + multiplier * tf / (tf + norm)
        return scores

    def rank_weighted(
        self,
        term_weights: Dict[str, float],
        limit: Optional[int] = None,
    ) -> List[RankedResult]:
        """Rank using a weighted query (term -> weight)."""
        scores = self.score_all(list(term_weights), term_weights=term_weights)
        return _to_results(_top_items(scores, limit))


def merge_rankings(
    rankings: Iterable[List[RankedResult]],
    weights: Optional[Sequence[float]] = None,
    limit: Optional[int] = None,
) -> List[RankedResult]:
    """Combine several rankings by weighted reciprocal-rank fusion.

    Used by the collaborative recommender to merge recommendation lists
    contributed by several peers in a group.  ``limit`` truncates the fused
    list using the same top-k selection as ``rank()``.
    """
    ranking_list = list(rankings)
    if weights is None:
        weights = [1.0] * len(ranking_list)
    if len(weights) != len(ranking_list):
        raise ValueError("weights must match the number of rankings")
    fused: Dict[str, float] = {}
    fused_get = fused.get
    for ranking, weight in zip(ranking_list, weights):
        for result in ranking:
            fused[result.doc_id] = fused_get(result.doc_id, 0.0) + weight / (
                60.0 + result.rank
            )
    return _to_results(_top_items(fused, limit))


# -- reference implementations (property-test oracles) -----------------------


def naive_bm25_score_all(
    index: InvertedIndex,
    terms: Sequence[str],
    k1: float = 1.2,
    b: float = 0.75,
    term_weights: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """The seed's straightforward BM25 loop, kept as the scoring oracle.

    Walks the allocated/sorted ``postings()`` lists and recomputes idf and
    the length norm per posting; the optimized ``BM25Ranker.score_all`` must
    produce identical scores (see tests/property/test_hotpath_equivalence.py).
    """
    scores: Dict[str, float] = {}
    avgdl = index.average_document_length
    if avgdl == 0:
        return scores
    n = index.num_documents
    for term in terms:
        df = index.document_frequency(term)
        idf = math.log((n - df + 0.5) / (df + 0.5) + 1.0)
        if idf <= 0:
            continue
        weight = 1.0 if term_weights is None else term_weights.get(term, 1.0)
        for posting in index.postings(term):
            tf = posting.term_frequency
            doc_length = index.document_length(posting.doc_id)
            denominator = tf + k1 * (1 - b + b * doc_length / avgdl)
            contribution = idf * weight * tf * (k1 + 1) / denominator
            scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + contribution
    return scores


def naive_tfidf_score_all(index: InvertedIndex, terms: Sequence[str]) -> Dict[str, float]:
    """The seed's straightforward TF-IDF loop, kept as the scoring oracle."""
    scores: Dict[str, float] = {}
    n = index.num_documents
    if n == 0:
        return scores
    for term in terms:
        df = index.document_frequency(term)
        if df == 0:
            continue
        idf = math.log((n + 1) / (df + 0.5))
        for posting in index.postings(term):
            tf_weight = 1.0 + math.log(posting.term_frequency)
            scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + tf_weight * idf
    for doc_id in list(scores):
        length = index.document_length(doc_id)
        if length > 0:
            scores[doc_id] /= math.sqrt(length)
    return scores
