"""Porter stemming algorithm (Porter, 1980).

A faithful implementation of the classic five-step suffix stripper.  It is
used by :class:`repro.ir.tokenize.TextAnalyzer` so that query terms derived
from browsing history and document terms in the video archive share one
term space, as in the paper's BM25 experiment.
"""

from __future__ import annotations


class PorterStemmer:
    """The Porter (1980) stemmer for English."""

    VOWELS = "aeiou"

    def stem(self, word: str) -> str:
        """Return the stem of ``word`` (expects a lowercase token)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and shape helpers ----------------------------------------

    def _is_consonant(self, word: str, index: int) -> bool:
        letter = word[index]
        if letter in self.VOWELS:
            return False
        if letter == "y":
            if index == 0:
                return True
            return not self._is_consonant(word, index - 1)
        return True

    def _measure(self, stem: str) -> int:
        """Count VC sequences in ``stem`` (the Porter measure m)."""
        forms = []
        for index in range(len(stem)):
            forms.append("c" if self._is_consonant(stem, index) else "v")
        collapsed = []
        for form in forms:
            if not collapsed or collapsed[-1] != form:
                collapsed.append(form)
        pattern = "".join(collapsed)
        return pattern.count("vc")

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, index) for index in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        if len(word) < 2:
            return False
        return word[-1] == word[-2] and self._is_consonant(word, len(word) - 1)

    def _ends_cvc(self, word: str) -> bool:
        if len(word) < 3:
            return False
        if (
            self._is_consonant(word, len(word) - 3)
            and not self._is_consonant(word, len(word) - 2)
            and self._is_consonant(word, len(word) - 1)
        ):
            return word[-1] not in "wxy"
        return False

    def _replace(self, word: str, suffix: str, replacement: str, min_measure: int) -> str:
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_measure:
            return stem + replacement
        return word

    # -- steps --------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem = word[:-2]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                return self._replace(word, suffix, replacement, 0)
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                return self._replace(word, suffix, replacement, 0)
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if self._measure(stem) > 1 and stem and stem[-1] in "st":
                return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            measure = self._measure(stem)
            if measure > 1:
                return stem
            if measure == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if self._measure(word) > 1 and self._ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word
