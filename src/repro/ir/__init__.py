"""Information-retrieval substrate.

The paper's content-based case study (Section 3.3) extracts the most
important terms from a user's browsing history with a modified Robertson
Offer Weight and ranks video news stories with BM25.  This package
implements that machinery from scratch: tokenization, stopword removal,
Porter stemming, an inverted index, TF-IDF / BM25 ranking, Offer-Weight
term selection and the retrieval metrics used to report results.
"""

from repro.ir.index import Document, InvertedIndex, Posting
from repro.ir.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    precision_improvement,
    recall_at_k,
)
from repro.ir.ranking import (
    BM25Ranker,
    RankedResult,
    TfIdfRanker,
    merge_rankings,
    naive_bm25_score_all,
    naive_tfidf_score_all,
)
from repro.ir.stemming import PorterStemmer
from repro.ir.termselect import OfferWeightSelector, TermScore
from repro.ir.tokenize import STOPWORDS, TextAnalyzer, tokenize

__all__ = [
    "tokenize",
    "TextAnalyzer",
    "STOPWORDS",
    "PorterStemmer",
    "Document",
    "Posting",
    "InvertedIndex",
    "TfIdfRanker",
    "BM25Ranker",
    "RankedResult",
    "merge_rankings",
    "naive_bm25_score_all",
    "naive_tfidf_score_all",
    "OfferWeightSelector",
    "TermScore",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "ndcg_at_k",
    "precision_improvement",
]
