"""Tokenization and text analysis.

The analyzer pipeline (lowercase -> tokenize -> drop stopwords -> stem) is
what both the crawler's keyword extractor and the video-news ranker use,
so a single shared implementation keeps query terms and document terms in
the same term space.
"""

from __future__ import annotations

import re
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.ir.stemming import PorterStemmer

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")

# A compact English stopword list (the usual SMART-style function words).
STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can't cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll he's
    her here here's hers herself him himself his how how's i i'd i'll i'm
    i've if in into is isn't it it's its itself let's me more most mustn't my
    myself no nor not of off on once only or other ought our ours ourselves
    out over own same shan't she she'd she'll she's should shouldn't so some
    such than that that's the their theirs them themselves then there there's
    these they they'd they'll they're they've this those through to too under
    until up very was wasn't we we'd we'll we're we've were weren't what
    what's when when's where where's which while who who's whom why why's
    with won't would wouldn't you you'd you'll you're you've your yours
    yourself yourselves will just also said says new one two may via
    """.split()
)


def tokenize(text: str) -> List[str]:
    """Split text into lowercase alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


@dataclass
class AnalyzedText:
    """Result of running text through the analyzer pipeline."""

    terms: List[str]
    term_frequencies: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.term_frequencies:
            self.term_frequencies = dict(Counter(self.terms))

    @property
    def length(self) -> int:
        return len(self.terms)

    def top_terms(self, n: int) -> List[str]:
        ordered = sorted(
            self.term_frequencies.items(), key=lambda item: (-item[1], item[0])
        )
        return [term for term, _ in ordered[:n]]


class TextAnalyzer:
    """Configurable lowercase / stopword / stemming analyzer.

    Whole-text analysis results are memoized in a bounded LRU cache
    (``analysis_cache_size`` entries; 0 disables it), so repeatedly
    indexing the same text — crawler re-visits, index churn that re-adds
    documents, mirrored pages — skips tokenization and stemming entirely.
    Cached entries are private copies; callers may freely mutate what
    :meth:`analyze` returns.
    """

    def __init__(
        self,
        stopwords: Optional[Iterable[str]] = None,
        stem: bool = True,
        min_token_length: int = 2,
        max_token_length: int = 40,
        analysis_cache_size: int = 4096,
    ) -> None:
        self.stopwords = frozenset(stopwords) if stopwords is not None else STOPWORDS
        self.stem = stem
        self.min_token_length = min_token_length
        self.max_token_length = max_token_length
        self.analysis_cache_size = analysis_cache_size
        self._stemmer = PorterStemmer() if stem else None
        self._stem_cache: Dict[str, str] = {}
        self._analysis_cache: "OrderedDict[str, AnalyzedText]" = OrderedDict()

    def analyze(self, text: str) -> AnalyzedText:
        """Run the full pipeline over ``text`` (memoized per text)."""
        cache_size = self.analysis_cache_size
        if cache_size:
            cached = self._analysis_cache.get(text)
            if cached is not None:
                self._analysis_cache.move_to_end(text)
                return AnalyzedText(list(cached.terms), dict(cached.term_frequencies))
        terms = []
        for token in tokenize(text):
            if token in self.stopwords:
                continue
            if not (self.min_token_length <= len(token) <= self.max_token_length):
                continue
            if token.isdigit():
                continue
            terms.append(self._stem_token(token))
        analyzed = AnalyzedText(terms)
        if cache_size:
            self._analysis_cache[text] = AnalyzedText(
                list(terms), dict(analyzed.term_frequencies)
            )
            if len(self._analysis_cache) > cache_size:
                self._analysis_cache.popitem(last=False)
        return analyzed

    def analyze_terms(self, text: str) -> List[str]:
        """Convenience wrapper returning just the term list."""
        return self.analyze(text).terms

    def _stem_token(self, token: str) -> str:
        if self._stemmer is None:
            return token
        cached = self._stem_cache.get(token)
        if cached is None:
            cached = self._stemmer.stem(token)
            self._stem_cache[token] = cached
        return cached


def term_frequencies(texts: Sequence[str], analyzer: Optional[TextAnalyzer] = None) -> Counter:
    """Aggregate term frequencies over many texts (e.g. all pages a user read)."""
    analyzer = analyzer if analyzer is not None else TextAnalyzer()
    counts: Counter = Counter()
    for text in texts:
        counts.update(analyzer.analyze(text).terms)
    return counts
