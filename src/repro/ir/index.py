"""Document store and inverted index.

The index keeps per-term posting lists with term frequencies, plus the
document-length statistics that BM25 needs.  Documents can be added
incrementally (the crawler indexes pages as they are fetched) and removed
(pages reclassified as ads/spam are dropped from the term statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.tokenize import TextAnalyzer


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's posting list."""

    doc_id: str
    term_frequency: int


@dataclass
class Document:
    """A unit of indexed text (a Web page, a video-story transcript, ...)."""

    doc_id: str
    text: str
    metadata: Dict[str, object] = field(default_factory=dict)


class InvertedIndex:
    """In-memory inverted index with document statistics."""

    def __init__(self, analyzer: Optional[TextAnalyzer] = None) -> None:
        self.analyzer = analyzer if analyzer is not None else TextAnalyzer()
        self._postings: Dict[str, Dict[str, int]] = {}
        self._documents: Dict[str, Document] = {}
        self._doc_lengths: Dict[str, int] = {}
        self._total_length = 0

    # -- mutation ----------------------------------------------------------

    def add(self, document: Document) -> None:
        """Index ``document``; re-adding an existing id replaces it."""
        if document.doc_id in self._documents:
            self.remove(document.doc_id)
        analyzed = self.analyzer.analyze(document.text)
        self._documents[document.doc_id] = document
        self._doc_lengths[document.doc_id] = analyzed.length
        self._total_length += analyzed.length
        for term, frequency in analyzed.term_frequencies.items():
            self._postings.setdefault(term, {})[document.doc_id] = frequency

    def add_text(self, doc_id: str, text: str, **metadata: object) -> Document:
        """Convenience: wrap text in a Document and index it."""
        document = Document(doc_id=doc_id, text=text, metadata=dict(metadata))
        self.add(document)
        return document

    def remove(self, doc_id: str) -> bool:
        """Remove a document; returns False if it was not indexed."""
        document = self._documents.pop(doc_id, None)
        if document is None:
            return False
        length = self._doc_lengths.pop(doc_id, 0)
        self._total_length -= length
        empty_terms = []
        for term, postings in self._postings.items():
            if doc_id in postings:
                del postings[doc_id]
                if not postings:
                    empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        return True

    # -- statistics ----------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    @property
    def average_document_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    def document(self, doc_id: str) -> Optional[Document]:
        return self._documents.get(doc_id)

    def documents(self) -> Iterable[Document]:
        return self._documents.values()

    def document_ids(self) -> List[str]:
        return list(self._documents)

    def document_length(self, doc_id: str) -> int:
        return self._doc_lengths.get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (term must be analyzed form)."""
        return len(self._postings.get(term, {}))

    def term_frequency(self, term: str, doc_id: str) -> int:
        return self._postings.get(term, {}).get(doc_id, 0)

    def postings(self, term: str) -> List[Posting]:
        return [
            Posting(doc_id, frequency)
            for doc_id, frequency in sorted(self._postings.get(term, {}).items())
        ]

    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across the collection."""
        return sum(self._postings.get(term, {}).values())

    def terms_for_document(self, doc_id: str) -> Dict[str, int]:
        """Term frequency vector for one document (recomputed from text)."""
        document = self._documents.get(doc_id)
        if document is None:
            return {}
        return dict(self.analyzer.analyze(document.text).term_frequencies)

    def candidate_documents(self, terms: Iterable[str]) -> List[str]:
        """Union of documents containing any of ``terms``."""
        seen: Dict[str, None] = {}
        for term in terms:
            for doc_id in self._postings.get(term, {}):
                seen[doc_id] = None
        return list(seen)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def stats(self) -> Dict[str, float]:
        return {
            "documents": float(self.num_documents),
            "terms": float(self.num_terms),
            "avg_doc_length": self.average_document_length,
        }
