"""Document store and inverted index.

The index keeps per-term posting lists with term frequencies, plus the
document-length statistics that BM25 needs.  Documents can be added
incrementally (the crawler indexes pages as they are fetched) and removed
(pages reclassified as ads/spam are dropped from the term statistics).

Hot-path notes (see PERFORMANCE.md): the index keeps a doc -> term-vector
reverse map so ``remove()`` touches only the document's own terms instead
of scanning the vocabulary, exposes the raw posting dictionaries for
rankers (``postings_map``/``doc_length_map``) so scoring loops avoid
per-call :class:`Posting` allocation and sorting, and carries a ``version``
counter that mutations bump so rankers can cache derived statistics
(idf, length norms) until the index actually changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.ir.tokenize import TextAnalyzer

_EMPTY_POSTINGS: Dict[str, int] = {}


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's posting list."""

    doc_id: str
    term_frequency: int


@dataclass
class Document:
    """A unit of indexed text (a Web page, a video-story transcript, ...)."""

    doc_id: str
    text: str
    metadata: Dict[str, object] = field(default_factory=dict)


class InvertedIndex:
    """In-memory inverted index with document statistics."""

    def __init__(self, analyzer: Optional[TextAnalyzer] = None) -> None:
        self.analyzer = analyzer if analyzer is not None else TextAnalyzer()
        self._postings: Dict[str, Dict[str, int]] = {}
        self._documents: Dict[str, Document] = {}
        self._doc_lengths: Dict[str, int] = {}
        # Reverse map doc_id -> {term: frequency}; makes remove() proportional
        # to the document's own vocabulary and terms_for_document() O(1).
        self._doc_terms: Dict[str, Dict[str, int]] = {}
        self._total_length = 0
        self._version = 0

    # -- mutation ----------------------------------------------------------

    def add(self, document: Document) -> None:
        """Index ``document``; re-adding an existing id replaces it."""
        if document.doc_id in self._documents:
            self.remove(document.doc_id)
        analyzed = self.analyzer.analyze(document.text)
        term_frequencies = dict(analyzed.term_frequencies)
        doc_id = document.doc_id
        self._documents[doc_id] = document
        self._doc_lengths[doc_id] = analyzed.length
        self._doc_terms[doc_id] = term_frequencies
        self._total_length += analyzed.length
        postings = self._postings
        for term, frequency in term_frequencies.items():
            bucket = postings.get(term)
            if bucket is None:
                postings[term] = {doc_id: frequency}
            else:
                bucket[doc_id] = frequency
        self._version += 1

    def add_text(self, doc_id: str, text: str, **metadata: object) -> Document:
        """Convenience: wrap text in a Document and index it."""
        document = Document(doc_id=doc_id, text=text, metadata=dict(metadata))
        self.add(document)
        return document

    def remove(self, doc_id: str) -> bool:
        """Remove a document; returns False if it was not indexed.

        Cost is O(|terms(d)|) via the reverse map, not O(|vocabulary|).
        """
        document = self._documents.pop(doc_id, None)
        if document is None:
            return False
        self._total_length -= self._doc_lengths.pop(doc_id, 0)
        postings = self._postings
        for term in self._doc_terms.pop(doc_id, ()):
            bucket = postings.get(term)
            if bucket is not None:
                bucket.pop(doc_id, None)
                if not bucket:
                    del postings[term]
        self._version += 1
        return True

    # -- statistics ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever term statistics may change."""
        return self._version

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    @property
    def average_document_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    def document(self, doc_id: str) -> Optional[Document]:
        return self._documents.get(doc_id)

    def documents(self) -> Iterable[Document]:
        return self._documents.values()

    def document_ids(self) -> List[str]:
        return list(self._documents)

    def document_length(self, doc_id: str) -> int:
        return self._doc_lengths.get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (term must be analyzed form).

        O(1): the df of a term is the size of its posting dictionary, which
        add()/remove() keep incrementally correct.
        """
        bucket = self._postings.get(term)
        return len(bucket) if bucket is not None else 0

    def term_frequency(self, term: str, doc_id: str) -> int:
        return self._postings.get(term, _EMPTY_POSTINGS).get(doc_id, 0)

    def postings(self, term: str) -> List[Posting]:
        return [
            Posting(doc_id, frequency)
            for doc_id, frequency in sorted(self._postings.get(term, _EMPTY_POSTINGS).items())
        ]

    def postings_map(self, term: str) -> Mapping[str, int]:
        """Raw posting dictionary ``doc_id -> term frequency`` for ``term``.

        This is the zero-copy scoring interface: no :class:`Posting`
        allocation and no sorting.  Callers MUST NOT mutate the result.
        """
        return self._postings.get(term, _EMPTY_POSTINGS)

    def doc_length_map(self) -> Mapping[str, int]:
        """Raw ``doc_id -> length`` map (read-only; do not mutate)."""
        return self._doc_lengths

    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across the collection."""
        return sum(self._postings.get(term, _EMPTY_POSTINGS).values())

    def terms_for_document(self, doc_id: str) -> Dict[str, int]:
        """Term frequency vector for one document (from the reverse map)."""
        term_frequencies = self._doc_terms.get(doc_id)
        if term_frequencies is None:
            return {}
        return dict(term_frequencies)

    def candidate_documents(self, terms: Iterable[str]) -> List[str]:
        """Union of documents containing any of ``terms``."""
        seen: Dict[str, None] = {}
        for term in terms:
            for doc_id in self._postings.get(term, _EMPTY_POSTINGS):
                seen[doc_id] = None
        return list(seen)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def stats(self) -> Dict[str, float]:
        return {
            "documents": float(self.num_documents),
            "terms": float(self.num_terms),
            "avg_doc_length": self.average_document_length,
        }
