"""Retrieval evaluation metrics.

The paper reports a single headline metric: the *precision improvement* of
the attention-derived ranking over the original airing order ("precision
peaked at 34% improvement, meaning that a third more interesting stories
appeared in the front").  These helpers implement that metric along with
the standard P@k, recall@k, average precision and nDCG used in extension
experiments.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Set


def precision_at_k(ranking: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the top-k ranked items that are relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = list(ranking)[:k]
    if not top:
        return 0.0
    hits = sum(1 for doc_id in top if doc_id in relevant)
    return hits / len(top)


def recall_at_k(ranking: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of all relevant items found in the top-k."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    top = list(ranking)[:k]
    hits = sum(1 for doc_id in top if doc_id in relevant)
    return hits / len(relevant)


def average_precision(ranking: Sequence[str], relevant: Set[str]) -> float:
    """Mean of precision values at each relevant item's rank."""
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(relevant)


def ndcg_at_k(ranking: Sequence[str], gains: Dict[str, float], k: int) -> float:
    """Normalized discounted cumulative gain with graded relevance."""
    if k <= 0:
        raise ValueError("k must be positive")
    dcg = 0.0
    for position, doc_id in enumerate(list(ranking)[:k], start=1):
        gain = gains.get(doc_id, 0.0)
        if gain:
            dcg += (2**gain - 1) / math.log2(position + 1)
    ideal_gains = sorted(gains.values(), reverse=True)[:k]
    idcg = sum(
        (2**gain - 1) / math.log2(position + 1)
        for position, gain in enumerate(ideal_gains, start=1)
        if gain
    )
    if idcg == 0:
        return 0.0
    return dcg / idcg


def precision_improvement(
    ranking: Sequence[str],
    baseline: Sequence[str],
    relevant: Set[str],
    k: int,
) -> float:
    """Relative improvement of P@k of ``ranking`` over ``baseline``.

    Returns a fraction: 0.34 means "a third more interesting stories
    appeared in the front", matching the paper's phrasing.  If the baseline
    precision is zero the improvement is reported against a floor of one
    relevant item in the top-k to avoid division by zero.
    """
    ranked_precision = precision_at_k(ranking, relevant, k)
    baseline_precision = precision_at_k(baseline, relevant, k)
    if baseline_precision == 0:
        baseline_precision = 1.0 / k
    return (ranked_precision - baseline_precision) / baseline_precision


def mean_reciprocal_rank(ranking: Sequence[str], relevant: Set[str]) -> float:
    """Reciprocal rank of the first relevant item (0 if none present)."""
    for position, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant:
            return 1.0 / position
    return 0.0
