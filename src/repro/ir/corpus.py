"""Synthetic text generation from topic-term distributions.

Both the simulated Web pages and the video-story archive need topical text
so that the IR pipeline (term extraction, BM25) behaves realistically: a
user interested in a topic reads pages whose vocabulary overlaps with the
stories on that topic.  A :class:`TopicModel` is a simple mixture of topics
over a shared vocabulary with Zipfian word frequencies inside each topic,
plus a background distribution of common words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim.rng import SeededRNG, ZipfSampler


@dataclass
class Topic:
    """A named topic with a ranked vocabulary (most characteristic first)."""

    name: str
    vocabulary: List[str]

    def __post_init__(self) -> None:
        if not self.vocabulary:
            raise ValueError(f"topic {self.name!r} has an empty vocabulary")


@dataclass
class GeneratedDocument:
    """A synthetic document with its generating topic mixture."""

    text: str
    topic_mixture: Dict[str, float] = field(default_factory=dict)

    def dominant_topic(self) -> Optional[str]:
        if not self.topic_mixture:
            return None
        return max(self.topic_mixture.items(), key=lambda item: item[1])[0]


class TopicModel:
    """Generate documents as mixtures of topic vocabularies.

    Words within a topic are drawn Zipf-distributed over the topic's ranked
    vocabulary, so the first few vocabulary words of a topic dominate its
    documents — which is what makes Offer-Weight term selection find them.
    """

    def __init__(
        self,
        topics: Sequence[Topic],
        background_vocabulary: Sequence[str],
        rng: SeededRNG,
        background_probability: float = 0.3,
        zipf_exponent: float = 1.1,
    ) -> None:
        if not topics:
            raise ValueError("at least one topic is required")
        if not 0 <= background_probability < 1:
            raise ValueError("background_probability must be in [0, 1)")
        self.topics = {topic.name: topic for topic in topics}
        self.background_vocabulary = list(background_vocabulary)
        self.background_probability = background_probability
        self._rng = rng
        self._samplers: Dict[str, ZipfSampler] = {
            topic.name: ZipfSampler(len(topic.vocabulary), zipf_exponent, rng.fork(f"topic:{topic.name}"))
            for topic in topics
        }
        self._background_sampler = (
            ZipfSampler(len(self.background_vocabulary), zipf_exponent, rng.fork("background"))
            if self.background_vocabulary
            else None
        )

    def topic_names(self) -> List[str]:
        return list(self.topics)

    def generate(
        self,
        topic_mixture: Mapping[str, float],
        length: int,
    ) -> GeneratedDocument:
        """Generate a document of ``length`` words from ``topic_mixture``."""
        if length <= 0:
            raise ValueError("length must be positive")
        names = list(topic_mixture)
        weights = [topic_mixture[name] for name in names]
        if not names or sum(weights) <= 0:
            raise ValueError("topic mixture must have positive total weight")
        for name in names:
            if name not in self.topics:
                raise KeyError(f"unknown topic {name!r}")
        words: List[str] = []
        for _ in range(length):
            use_background = (
                self._background_sampler is not None
                and self._rng.random() < self.background_probability
            )
            if use_background:
                rank = self._background_sampler.sample()
                words.append(self.background_vocabulary[rank])
            else:
                topic_name = self._rng.weighted_choice(names, weights)
                sampler = self._samplers[topic_name]
                rank = sampler.sample()
                words.append(self.topics[topic_name].vocabulary[rank])
        total = sum(weights)
        mixture = {name: weight / total for name, weight in zip(names, weights)}
        return GeneratedDocument(text=" ".join(words), topic_mixture=mixture)

    def generate_single_topic(self, topic_name: str, length: int) -> GeneratedDocument:
        """Generate a document drawn from one topic only."""
        return self.generate({topic_name: 1.0}, length)
