"""Reef: automatic subscriptions in publish-subscribe systems.

A from-scratch Python reproduction of Brenna, Gurrin, Johansen and
Zagorodnov, "Automatic Subscriptions In Publish-Subscribe Systems"
(ICDCS Workshops 2006).

Subpackages
-----------
``repro.core``
    Reef itself: attention recording, parsing, recommendation and the
    centralized / distributed deployments (the paper's contribution).
``repro.pubsub``
    Publish-subscribe substrates: content-based matching and routing,
    topic multicast over a DHT, a Cayuga-style algebra subset and the
    WAIF-style feed push proxy.
``repro.web``
    A simulated Web: servers, pages, feeds, browsers, interest-driven
    synthetic users and a crawler.
``repro.ir``
    Information retrieval: tokenization, Porter stemming, inverted index,
    BM25, Offer-Weight term selection and evaluation metrics.
``repro.sim``
    Discrete-event simulation kernel, seeded randomness and metrics.
``repro.datasets``
    Synthetic datasets calibrated to the paper's traces.
``repro.experiments``
    Drivers that regenerate the paper's reported numbers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
