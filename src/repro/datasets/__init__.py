"""Synthetic datasets calibrated to the paper's experimental traces.

* :mod:`repro.datasets.vocab` — topic vocabularies and topic models for
  generating topical page and story text;
* :mod:`repro.datasets.browsing` — the ten-week / five-user browsing trace
  of Section 3.2 (experiment E1);
* :mod:`repro.datasets.video` — the 500-story video news archive and the
  synthetic relevance judgements of Section 3.3 (experiment E2).
"""

from repro.datasets.browsing import BrowsingDataset, BrowsingDatasetConfig, build_browsing_dataset
from repro.datasets.video import VideoArchive, VideoArchiveConfig, VideoStory, build_video_archive
from repro.datasets.vocab import build_topic_model, default_topics, background_vocabulary

__all__ = [
    "default_topics",
    "background_vocabulary",
    "build_topic_model",
    "BrowsingDataset",
    "BrowsingDatasetConfig",
    "build_browsing_dataset",
    "VideoStory",
    "VideoArchive",
    "VideoArchiveConfig",
    "build_video_archive",
]
