"""The video news archive of Section 3.3 (experiment E2).

The paper uses "an archive of 500 video stories that aired on ABC and CNN
in 2004" (the TRECVid 2004 collection) and a single test user who, after
six weeks of recorded browsing, ranked the stories by interest.  We
substitute a synthetic archive whose stories carry topical text (so BM25
and Offer-Weight selection behave realistically) and a synthetic relevance
model for each user: a story is relevant with probability rising in the
user's interest in the story's topics.

The resulting dataset preserves the property that makes the paper's result
possible: the pages a user reads and the stories they find interesting are
generated from the *same* interest profile, so a query mined from the
former can re-rank the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.datasets.vocab import build_topic_model, default_topics
from repro.ir.corpus import TopicModel
from repro.ir.index import Document, InvertedIndex
from repro.sim.rng import SeededRNG
from repro.web.user_model import InterestProfile


@dataclass(frozen=True)
class VideoStory:
    """One story in the archive."""

    story_id: str
    title: str
    transcript: str
    source: str
    aired_at: float
    topics: tuple

    def as_document(self) -> Document:
        return Document(
            doc_id=self.story_id,
            text=f"{self.title} {self.transcript}",
            metadata={
                "source": self.source,
                "aired_at": self.aired_at,
                "topics": list(self.topics),
            },
        )


@dataclass
class VideoArchiveConfig:
    """Parameters of the synthetic story archive."""

    num_stories: int = 500
    transcript_length_words: int = 160
    sources: Sequence[str] = ("ABC", "CNN")
    #: probability that a story mixes in a second topic.
    two_topic_probability: float = 0.3
    #: baseline probability that any story is relevant to a user.
    base_relevance: float = 0.12
    #: additional relevance probability per unit of interest affinity.
    affinity_relevance: float = 0.50
    seed: int = 2004


@dataclass
class VideoArchive:
    """The story archive plus an index over the transcripts."""

    config: VideoArchiveConfig
    stories: List[VideoStory]
    index: InvertedIndex
    topic_model: TopicModel

    def airing_order(self) -> List[str]:
        """Story ids in original airing order (the paper's baseline ranking)."""
        ordered = sorted(self.stories, key=lambda story: story.aired_at)
        return [story.story_id for story in ordered]

    def story(self, story_id: str) -> Optional[VideoStory]:
        for story in self.stories:
            if story.story_id == story_id:
                return story
        return None

    def relevance_judgements(
        self, profile: InterestProfile, rng: SeededRNG
    ) -> Set[str]:
        """Synthetic 'ranked by interest' judgements for one user.

        A story is judged interesting with probability
        ``base_relevance + affinity_relevance * affinity`` where affinity is
        the user's normalized interest in the story's dominant topic.
        """
        relevant: Set[str] = set()
        for story in self.stories:
            affinity = profile.affinity(list(story.topics))
            probability = min(
                1.0,
                self.config.base_relevance + self.config.affinity_relevance * affinity,
            )
            if rng.random() < probability:
                relevant.add(story.story_id)
        return relevant

    def graded_relevance(
        self, profile: InterestProfile, rng: SeededRNG, levels: int = 3
    ) -> Dict[str, float]:
        """Graded judgements (0..levels) used by the nDCG extension metrics."""
        gains: Dict[str, float] = {}
        for story in self.stories:
            affinity = profile.affinity(list(story.topics))
            expected = affinity * levels
            noise = rng.gauss(0.0, 0.5)
            gains[story.story_id] = max(0.0, min(float(levels), expected + noise))
        return gains


def build_video_archive(
    config: Optional[VideoArchiveConfig] = None,
    topic_model: Optional[TopicModel] = None,
    topics: Optional[Sequence[str]] = None,
) -> VideoArchive:
    """Generate the synthetic story archive and index it."""
    config = config if config is not None else VideoArchiveConfig()
    rng = SeededRNG(config.seed)
    if topic_model is None:
        topic_model = build_topic_model(rng.fork("topics"), topics=topics)
    topic_names = topic_model.topic_names()

    stories: List[VideoStory] = []
    index = InvertedIndex()
    day_seconds = 86400.0
    for number in range(config.num_stories):
        primary = topic_names[number % len(topic_names)]
        mixture = {primary: 1.0}
        story_topics = [primary]
        if rng.random() < config.two_topic_probability:
            secondary = rng.choice(topic_names)
            if secondary != primary:
                mixture[secondary] = 0.5
                story_topics.append(secondary)
        document = topic_model.generate(mixture, config.transcript_length_words)
        title_words = document.text.split()[:8]
        source = config.sources[number % len(config.sources)]
        story = VideoStory(
            story_id=f"story-{number + 1:04d}",
            title=" ".join(title_words),
            transcript=document.text,
            source=source,
            aired_at=number * (365 * day_seconds / max(config.num_stories, 1)),
            topics=tuple(story_topics),
        )
        stories.append(story)
        index.add(story.as_document())

    return VideoArchive(
        config=config, stories=stories, index=index, topic_model=topic_model
    )
