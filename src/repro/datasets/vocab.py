"""Topic vocabularies for synthetic text generation.

Twelve news-like topics with hand-curated vocabularies, plus a background
vocabulary of common non-topical words.  The vocabularies are ranked: the
first words of each topic are its most characteristic terms, which is what
Zipfian sampling inside :class:`repro.ir.corpus.TopicModel` turns into the
high-frequency terms that Offer-Weight selection later picks up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.corpus import Topic, TopicModel
from repro.sim.rng import SeededRNG

TOPIC_VOCABULARIES: Dict[str, List[str]] = {
    "politics": [
        "election", "parliament", "senate", "campaign", "minister", "policy",
        "government", "vote", "ballot", "candidate", "legislation", "congress",
        "coalition", "referendum", "diplomat", "treaty", "cabinet", "governor",
        "opposition", "debate", "reform", "constitution", "sanction", "summit",
        "embassy", "lawmaker", "bill", "veto", "poll", "mandate",
    ],
    "technology": [
        "software", "internet", "computer", "network", "startup", "processor",
        "algorithm", "database", "browser", "server", "encryption", "mobile",
        "silicon", "gadget", "robot", "chip", "broadband", "wireless",
        "platform", "interface", "protocol", "hardware", "developer", "code",
        "laptop", "semiconductor", "opensource", "firmware", "storage", "cloud",
    ],
    "sports": [
        "football", "championship", "tournament", "league", "goal", "coach",
        "stadium", "olympics", "athlete", "match", "season", "playoff",
        "basketball", "tennis", "marathon", "medal", "referee", "transfer",
        "striker", "defender", "quarterback", "innings", "cricket", "cycling",
        "sprint", "relay", "fixture", "derby", "penalty", "halftime",
    ],
    "health": [
        "hospital", "vaccine", "doctor", "patient", "disease", "treatment",
        "clinic", "surgery", "epidemic", "medicine", "diagnosis", "therapy",
        "virus", "infection", "cancer", "diabetes", "nutrition", "wellness",
        "pharmacy", "prescription", "symptom", "outbreak", "immunity", "nurse",
        "cardiology", "pediatric", "antibiotic", "screening", "obesity", "fitness",
    ],
    "finance": [
        "market", "stock", "investor", "earnings", "dividend", "banking",
        "inflation", "currency", "portfolio", "bond", "trading", "merger",
        "acquisition", "hedge", "equity", "interest", "mortgage", "recession",
        "revenue", "profit", "shareholder", "regulator", "audit", "futures",
        "commodity", "pension", "brokerage", "valuation", "liquidity", "deficit",
    ],
    "science": [
        "research", "laboratory", "experiment", "physics", "chemistry",
        "biology", "genome", "telescope", "particle", "quantum", "molecule",
        "astronomy", "climate", "fossil", "species", "evolution", "galaxy",
        "neutron", "protein", "enzyme", "satellite", "probe", "geology",
        "ecology", "hypothesis", "microscope", "radiation", "asteroid", "cell",
        "theorem",
    ],
    "travel": [
        "airline", "airport", "tourism", "hotel", "destination", "passport",
        "flight", "cruise", "resort", "itinerary", "luggage", "visa",
        "backpacking", "safari", "beach", "mountain", "museum", "landmark",
        "booking", "voyage", "adventure", "sightseeing", "hostel", "terminal",
        "carrier", "excursion", "island", "heritage", "souvenir", "compass",
    ],
    "music": [
        "album", "concert", "guitar", "orchestra", "singer", "festival",
        "melody", "rhythm", "symphony", "band", "studio", "chart",
        "vinyl", "jazz", "opera", "chorus", "lyrics", "producer",
        "drummer", "piano", "acoustic", "tour", "ballad", "soundtrack",
        "composer", "violin", "tempo", "harmony", "microphone", "encore",
    ],
    "movies": [
        "film", "director", "actor", "cinema", "screenplay", "premiere",
        "trailer", "studio", "boxoffice", "sequel", "documentary", "animation",
        "festival", "oscar", "casting", "scene", "producer", "thriller",
        "comedy", "drama", "audition", "script", "cinematography", "editing",
        "blockbuster", "actress", "franchise", "remake", "subtitle", "screening",
    ],
    "food": [
        "restaurant", "recipe", "chef", "cuisine", "ingredient", "kitchen",
        "bakery", "flavor", "organic", "dessert", "vegetarian", "grill",
        "sauce", "spice", "harvest", "vineyard", "brewery", "pastry",
        "seafood", "noodle", "roast", "menu", "gourmet", "farmers",
        "chocolate", "cheese", "barbecue", "broth", "dining", "appetizer",
    ],
    "weather": [
        "forecast", "storm", "hurricane", "temperature", "rainfall", "drought",
        "blizzard", "flood", "tornado", "humidity", "thunder", "lightning",
        "heatwave", "frost", "monsoon", "precipitation", "barometer", "gale",
        "avalanche", "wildfire", "cyclone", "snowfall", "meteorology", "fog",
        "hail", "typhoon", "windchill", "overcast", "seismic", "tsunami",
    ],
    "education": [
        "university", "student", "curriculum", "teacher", "scholarship",
        "classroom", "tuition", "graduate", "faculty", "lecture", "semester",
        "enrollment", "diploma", "literacy", "kindergarten", "textbook",
        "campus", "professor", "thesis", "exam", "homework", "mentor",
        "laboratory", "seminar", "dissertation", "accreditation", "syllabus",
        "tutoring", "admission", "degree",
    ],
}

BACKGROUND_VOCABULARY: List[str] = [
    "report", "today", "people", "world", "city", "year", "time", "group",
    "company", "plan", "week", "news", "official", "country", "state",
    "public", "announce", "expect", "include", "continue", "month", "local",
    "national", "number", "percent", "change", "increase", "decrease",
    "leader", "member", "service", "system", "program", "project", "issue",
    "question", "problem", "result", "record", "level", "area", "region",
    "community", "family", "home", "work", "life", "day", "story", "source",
]


def default_topics() -> List[str]:
    """Names of the built-in topics."""
    return list(TOPIC_VOCABULARIES)


def background_vocabulary() -> List[str]:
    """The shared non-topical vocabulary."""
    return list(BACKGROUND_VOCABULARY)


def build_topic_model(
    rng: SeededRNG,
    topics: Optional[Sequence[str]] = None,
    background_probability: float = 0.3,
    zipf_exponent: float = 1.4,
) -> TopicModel:
    """Construct a :class:`TopicModel` over the built-in vocabularies.

    The Zipf exponent controls how concentrated each topic's text is on its
    leading vocabulary words; the default of 1.4 makes roughly the first
    dozen words of a topic carry most of its mass, which is what gives the
    Offer-Weight selector a compact set of discriminative terms per topic.
    """
    names = list(topics) if topics is not None else default_topics()
    unknown = [name for name in names if name not in TOPIC_VOCABULARIES]
    if unknown:
        raise KeyError(f"unknown topics: {unknown}")
    topic_objects = [Topic(name, list(TOPIC_VOCABULARIES[name])) for name in names]
    return TopicModel(
        topics=topic_objects,
        background_vocabulary=BACKGROUND_VOCABULARY,
        rng=rng,
        background_probability=background_probability,
        zipf_exponent=zipf_exponent,
    )
