"""The ten-week, five-user browsing trace of Section 3.2 (experiment E1).

The paper reports, for ten weeks of browsing by five test users:

* over 77 000 requests to 2 528 distinct Web servers;
* 70 % of the requests went to 1 713 advertisement servers;
* 807 servers were visited only once;
* 424 distinct RSS feeds were found on the remaining 906 Web servers;
* on average one new feed recommendation per user per day.

:func:`build_browsing_dataset` constructs a synthetic Web and a population
of interest-driven users whose aggregate behaviour is calibrated to those
statistics; the E1 experiment then runs the centralized Reef pipeline over
the generated clicks and reports the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datasets.vocab import build_topic_model, default_topics
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import SeededRNG
from repro.web.browser import Browser
from repro.web.http import SimulatedHttp
from repro.web.user_model import BrowsingBehaviour, BrowsingUser, InterestProfile
from repro.web.webgraph import SyntheticWeb, WebGraphConfig, build_synthetic_web


@dataclass
class BrowsingDatasetConfig:
    """Size/shape parameters of the synthetic browsing study."""

    num_users: int = 5
    duration_days: int = 70
    num_content_servers: int = 1200
    num_ad_servers: int = 1713
    num_multimedia_servers: int = 40
    pages_per_server_mean: int = 8
    page_length_words: int = 180
    feed_probability: float = 0.40
    extra_feed_probability: float = 0.12
    ads_per_page: int = 3
    ad_link_probability: float = 0.85
    sessions_per_day: float = 5.0
    pages_per_session_mean: float = 12.0
    revisit_probability: float = 0.50
    topical_probability: float = 0.38
    interests_per_user: int = 3
    #: geometric decay of interest strength from a user's first to last topic;
    #: values near 1.0 give evenly spread interests, small values a dominant one.
    interest_decay: float = 0.6
    seed: int = 20060419

    def scaled(self, factor: float) -> "BrowsingDatasetConfig":
        """A proportionally smaller configuration (used by fast tests)."""
        if factor <= 0 or factor > 1:
            raise ValueError("factor must be in (0, 1]")
        return BrowsingDatasetConfig(
            num_users=max(2, int(self.num_users * factor) or 2),
            duration_days=max(3, int(self.duration_days * factor)),
            num_content_servers=max(20, int(self.num_content_servers * factor)),
            num_ad_servers=max(20, int(self.num_ad_servers * factor)),
            num_multimedia_servers=max(4, int(self.num_multimedia_servers * factor)),
            pages_per_server_mean=self.pages_per_server_mean,
            page_length_words=self.page_length_words,
            feed_probability=self.feed_probability,
            extra_feed_probability=self.extra_feed_probability,
            ads_per_page=self.ads_per_page,
            ad_link_probability=self.ad_link_probability,
            sessions_per_day=self.sessions_per_day,
            pages_per_session_mean=self.pages_per_session_mean,
            revisit_probability=self.revisit_probability,
            topical_probability=self.topical_probability,
            interests_per_user=self.interests_per_user,
            interest_decay=self.interest_decay,
            seed=self.seed,
        )


@dataclass
class BrowsingDataset:
    """A synthetic web plus the browsing users that will generate the trace."""

    config: BrowsingDatasetConfig
    web: SyntheticWeb
    http: SimulatedHttp
    users: Dict[str, BrowsingUser]
    rng: SeededRNG

    def user_ids(self) -> List[str]:
        return sorted(self.users)


def build_browsing_dataset(
    config: Optional[BrowsingDatasetConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> BrowsingDataset:
    """Build the synthetic Web and user population for experiment E1."""
    config = config if config is not None else BrowsingDatasetConfig()
    rng = SeededRNG(config.seed)
    topic_model = build_topic_model(rng.fork("topics"))
    web_config = WebGraphConfig(
        num_content_servers=config.num_content_servers,
        num_ad_servers=config.num_ad_servers,
        num_multimedia_servers=config.num_multimedia_servers,
        pages_per_server_mean=config.pages_per_server_mean,
        page_length_words=config.page_length_words,
        feed_probability=config.feed_probability,
        extra_feed_probability=config.extra_feed_probability,
        ads_per_page=config.ads_per_page,
        ad_link_probability=config.ad_link_probability,
    )
    web = build_synthetic_web(topic_model, rng.fork("web"), web_config)
    http = SimulatedHttp(web.directory, metrics=metrics)

    topics = default_topics()
    users: Dict[str, BrowsingUser] = {}
    for index in range(config.num_users):
        user_id = f"user{index + 1}"
        user_rng = rng.fork(f"user:{user_id}")
        profile = _make_profile(
            topics, config.interests_per_user, user_rng, decay=config.interest_decay
        )
        behaviour = BrowsingBehaviour(
            sessions_per_day=config.sessions_per_day,
            pages_per_session_mean=config.pages_per_session_mean,
            revisit_probability=config.revisit_probability,
            topical_probability=config.topical_probability,
        )
        browser = Browser(user_id=user_id, http=http)
        users[user_id] = BrowsingUser(
            user_id=user_id,
            profile=profile,
            browser=browser,
            web=web,
            rng=user_rng,
            behaviour=behaviour,
        )
    return BrowsingDataset(config=config, web=web, http=http, users=users, rng=rng)


def _make_profile(
    topics: List[str], interests: int, rng: SeededRNG, decay: float = 0.6
) -> InterestProfile:
    """A user's interest profile: a few topics with geometrically decreasing
    strength (``decay`` close to 1.0 spreads interest evenly)."""
    chosen = rng.sample(topics, min(interests, len(topics)))
    weights = {}
    strength = 1.0
    for topic in chosen:
        weights[topic] = strength
        strength *= decay
    return InterestProfile(weights=weights)
