"""Recommendation service: turning parsed attention into sub/unsub actions.

Two concrete recommenders mirror the paper's case studies:

* :class:`TopicFeedRecommender` — Section 3.2: recommend subscribing to RSS
  feeds discovered on (or linked from) pages the user visits, and recommend
  unsubscribing when attention-derived signals say the feed is no longer
  interesting (handled together with the lifecycle manager).
* :class:`ContentQueryRecommender` — Section 3.3: build a top-N keyword
  query from the user's attention documents with the modified Offer Weight
  and recommend it as a content-based subscription (used to rank video news
  stories).

:class:`RecommendationService` multiplexes any number of recommenders and
deduplicates their output against the subscriptions already active.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.attention import AttentionStore, Click
from repro.core.config import ReefConfig
from repro.core.interest import InterestModel
from repro.core.parser import ParsedToken
from repro.ir.index import InvertedIndex
from repro.ir.termselect import OfferWeightSelector
from repro.pubsub.interface import InterfaceSpec
from repro.pubsub.subscriptions import Subscription

_recommendation_counter = itertools.count(1)


class RecommendationAction(str, enum.Enum):
    """What the recommendation service asks the frontend to do."""

    SUBSCRIBE = "subscribe"
    UNSUBSCRIBE = "unsubscribe"


@dataclass(frozen=True)
class Recommendation:
    """A single recommendation sent to a user's subscription frontend."""

    user_id: str
    action: RecommendationAction
    subscription: Subscription
    reason: str = ""
    score: float = 1.0
    recommendation_id: str = field(
        default_factory=lambda: f"rec-{next(_recommendation_counter):08d}"
    )

    @property
    def is_subscribe(self) -> bool:
        return self.action is RecommendationAction.SUBSCRIBE


class Recommender:
    """Base class: consumes per-user attention state, produces recommendations."""

    name = "recommender"

    def recommend(
        self,
        user_id: str,
        now: float,
        active_subscriptions: Sequence[Subscription],
    ) -> List[Recommendation]:
        raise NotImplementedError


class TopicFeedRecommender(Recommender):
    """Recommends topic-based subscriptions to newly discovered feeds.

    Feed discoveries are reported by the crawler (centralized design) or by
    the local parser reading the browser cache (distributed design) via
    :meth:`observe_feed`.  Each recommendation cycle proposes subscriptions
    for feeds discovered since the user last received a recommendation for
    them, most-visited servers first.
    """

    name = "topic-feeds"

    def __init__(
        self,
        interface: InterfaceSpec,
        config: Optional[ReefConfig] = None,
    ) -> None:
        self.interface = interface
        self.config = config if config is not None else ReefConfig()
        # user -> feed url -> weight (how strongly attention supports it)
        self._discovered: Dict[str, Dict[str, float]] = {}
        # user -> feeds already recommended (never re-recommended)
        self._already_recommended: Dict[str, Set[str]] = {}

    def observe_feed(self, user_id: str, feed_url: str, weight: float = 1.0) -> None:
        """Record that ``feed_url`` was discovered in ``user_id``'s attention."""
        feeds = self._discovered.setdefault(user_id, {})
        feeds[feed_url] = feeds.get(feed_url, 0.0) + weight

    def observe_tokens(self, user_id: str, tokens: Iterable[ParsedToken]) -> None:
        """Fold parsed feed-url tokens into the discovery state."""
        topic_attribute = self.interface.topic_attribute
        for token in tokens:
            if token.attribute == topic_attribute:
                self.observe_feed(user_id, token.value, token.weight)

    def discovered_feeds(self, user_id: str) -> List[str]:
        return sorted(self._discovered.get(user_id, ()))

    def recommend(
        self,
        user_id: str,
        now: float,
        active_subscriptions: Sequence[Subscription],
    ) -> List[Recommendation]:
        feeds = self._discovered.get(user_id, {})
        if not feeds:
            return []
        already = self._already_recommended.setdefault(user_id, set())
        active_topics = _active_topic_values(active_subscriptions, self.interface)
        candidates = [
            (feed_url, weight)
            for feed_url, weight in feeds.items()
            if feed_url not in already and feed_url not in active_topics
        ]
        candidates.sort(key=lambda item: (-item[1], item[0]))
        limit = self.config.max_feed_recommendations_per_cycle
        recommendations = []
        for feed_url, weight in candidates[:limit]:
            subscription = self.interface.make_topic_subscription(feed_url, subscriber=user_id)
            recommendations.append(
                Recommendation(
                    user_id=user_id,
                    action=RecommendationAction.SUBSCRIBE,
                    subscription=subscription,
                    reason=f"feed discovered on visited pages (weight={weight:.1f})",
                    score=weight,
                )
            )
            already.add(feed_url)
        return recommendations


class ContentQueryRecommender(Recommender):
    """Builds content-based keyword subscriptions from attention documents.

    The query is the top-N terms by the modified Offer Weight computed over
    the per-page term vectors of the pages the user read; the target
    collection statistics come from ``collection_index`` (the video-story
    archive in experiment E2).
    """

    name = "content-query"

    def __init__(
        self,
        interface: InterfaceSpec,
        collection_index: InvertedIndex,
        config: Optional[ReefConfig] = None,
    ) -> None:
        self.interface = interface
        self.collection_index = collection_index
        self.config = config if config is not None else ReefConfig()
        self.selector = OfferWeightSelector(
            collection_index,
            tf_exponent=self.config.offer_weight_tf_exponent,
            min_attention_documents=self.config.min_term_attention_documents,
        )
        # user -> list of per-document term-frequency vectors
        self._attention_documents: Dict[str, List[Dict[str, int]]] = {}

    def observe_document(self, user_id: str, term_frequencies: Dict[str, int]) -> None:
        """Add one attention document (a read page) for ``user_id``."""
        if term_frequencies:
            self._attention_documents.setdefault(user_id, []).append(dict(term_frequencies))

    def attention_document_count(self, user_id: str) -> int:
        return len(self._attention_documents.get(user_id, ()))

    def build_query(self, user_id: str, n_terms: Optional[int] = None) -> Dict[str, float]:
        """The weighted top-N query for ``user_id`` (term -> relevance weight)."""
        documents = self._attention_documents.get(user_id, [])
        if not documents:
            return {}
        n = n_terms if n_terms is not None else self.config.content_query_terms
        return self.selector.build_query(documents, n_terms=n, weighted=True)

    def recommend(
        self,
        user_id: str,
        now: float,
        active_subscriptions: Sequence[Subscription],
    ) -> List[Recommendation]:
        query = self.build_query(user_id)
        if not query:
            return []
        active_topics = _active_topic_values(active_subscriptions, self.interface)
        recommendations = []
        for term, weight in sorted(query.items(), key=lambda item: (-item[1], item[0])):
            if term in active_topics:
                continue
            try:
                subscription = self.interface.make_topic_subscription(term, subscriber=user_id)
            except ValueError:
                continue
            recommendations.append(
                Recommendation(
                    user_id=user_id,
                    action=RecommendationAction.SUBSCRIBE,
                    subscription=subscription,
                    reason="high offer-weight term in attention history",
                    score=weight,
                )
            )
        return recommendations


class RecommendationService:
    """Multiplexes recommenders and tracks what has been recommended."""

    def __init__(
        self,
        recommenders: Sequence[Recommender],
        config: Optional[ReefConfig] = None,
    ) -> None:
        if not recommenders:
            raise ValueError("at least one recommender is required")
        self.recommenders = list(recommenders)
        self.config = config if config is not None else ReefConfig()
        self.history: List[Recommendation] = []

    def recommend_for(
        self,
        user_id: str,
        now: float,
        active_subscriptions: Sequence[Subscription] = (),
    ) -> List[Recommendation]:
        """Collect recommendations from every recommender for one user."""
        recommendations: List[Recommendation] = []
        seen_descriptions: Set[str] = {
            subscription.describe() for subscription in active_subscriptions
        }
        for recommender in self.recommenders:
            for recommendation in recommender.recommend(user_id, now, active_subscriptions):
                description = recommendation.subscription.describe()
                if recommendation.is_subscribe and description in seen_descriptions:
                    continue
                seen_descriptions.add(description)
                recommendations.append(recommendation)
        self.history.extend(recommendations)
        return recommendations

    def recommendations_for(self, user_id: str) -> List[Recommendation]:
        return [rec for rec in self.history if rec.user_id == user_id]

    def subscribe_recommendation_count(self, user_id: Optional[str] = None) -> int:
        return sum(
            1
            for rec in self.history
            if rec.is_subscribe and (user_id is None or rec.user_id == user_id)
        )


def _active_topic_values(
    subscriptions: Sequence[Subscription], interface: InterfaceSpec
) -> Set[str]:
    """Topic values already covered by active subscriptions on the interface."""
    topic_attribute = interface.topic_attribute
    values: Set[str] = set()
    if topic_attribute is None:
        return values
    for subscription in subscriptions:
        if subscription.event_type != interface.event_type:
            continue
        for predicate in subscription.predicates:
            if predicate.attribute == topic_attribute and predicate.value is not None:
                values.add(str(predicate.value))
    return values
