"""Distributed Reef (Figure 2 of the paper).

In the peer-to-peer configuration "the attention data stays on the user's
host, where the subscription recommendation software analyzes it".  Every
component — recorder, parser, recommendation service, frontend — runs on
the :class:`ReefPeer`.  Only two kinds of traffic cross the network:
sub/unsub operations toward the publish-subscribe substrate (edge 1) and
delivered events (edge 2); optionally peers gossip *recommendations*
(never raw attention) with similar peers for collaborative filtering.

Key properties the F2 benchmark reports against the centralized design:

* privacy: zero bytes of attention data leave the host;
* crawl traffic: none — page text comes from the browser cache;
* scalability: server-side storage and computation are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.attention import AttentionBatch, AttentionRecorder, AttentionStore
from repro.core.centralized import ReactionModel, _subscription_topic_value
from repro.core.collaborative import CollaborativeRecommender, PeerGroupingService
from repro.core.config import ReefConfig
from repro.core.frontend import SubscriptionFrontend
from repro.core.interest import InterestModel
from repro.core.parser import AttentionParser, FeedUrlExtractor
from repro.core.recommender import (
    Recommendation,
    RecommendationService,
    TopicFeedRecommender,
)
from repro.pubsub.api import PubSubSystem
from repro.pubsub.interface import InterfaceSpec, feed_interface_spec
from repro.pubsub.proxy import FeedEventsProxy
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import SeededRNG
from repro.web.feeds import FeedPublisher
from repro.web.http import SimulatedHttp
from repro.web.user_model import BrowsingUser
from repro.web.webgraph import SyntheticWeb


class ReefPeer:
    """One user's host running the complete Reef pipeline locally."""

    def __init__(
        self,
        user_id: str,
        pubsub: PubSubSystem,
        interface: Optional[InterfaceSpec] = None,
        config: Optional[ReefConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.user_id = user_id
        self.config = config if config is not None else ReefConfig()
        self.interface = interface if interface is not None else feed_interface_spec()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        self.recorder = AttentionRecorder(user_id, batch_size=self.config.attention_batch_size)
        self.store = AttentionStore()
        self.parser = AttentionParser(self.interface, extractors=[FeedUrlExtractor()])
        self.interest_model = InterestModel(user_id)
        self.topic_recommender = TopicFeedRecommender(self.interface, self.config)
        self.service = RecommendationService([self.topic_recommender], self.config)
        self.frontend = SubscriptionFrontend(user_id, pubsub, config=self.config)
        self.recorder.add_sink(self._store_locally)
        # Recommendations received from peers (collaborative exchange).
        self.peer_recommendations: List[Recommendation] = []
        # Clicks already analyzed (analysis is incremental across cycles).
        self._analyzed_clicks = 0

    # -- local processing -----------------------------------------------------

    def _store_locally(self, batch: AttentionBatch) -> None:
        """Attention batches never leave the host; they land in a local store."""
        self.store.store_batch(batch)
        self.metrics.counter("peer.clicks_stored").increment(len(batch))

    def analyze_attention(self, now: float) -> int:
        """Parse locally stored attention using the browser cache for page
        text (no crawling needed) and update recommender state.

        Analysis is incremental: each cycle only the clicks recorded since
        the previous cycle are parsed.
        """
        clicks = self.store.clicks_for(self.user_id)
        new_clicks = clicks[self._analyzed_clicks:]
        self._analyzed_clicks = len(clicks)
        if not new_clicks:
            return 0
        pages = self.recorder.local_pages
        tokens = self.parser.parse_clicks(new_clicks, pages)
        self.topic_recommender.observe_tokens(self.user_id, tokens)
        term_weights: Dict[str, float] = {}
        for click in new_clicks:
            page = pages.get(click.url)
            if page is None:
                continue
            for topic in page.topics:
                term_weights[topic] = term_weights.get(topic, 0.0) + 1.0
        if term_weights:
            self.interest_model.observe_terms(term_weights, now)
        for click in new_clicks:
            self.interest_model.observe_server(click.server, now)
        return len(tokens)

    def recommend(self, now: float) -> List[Recommendation]:
        """Run the local recommendation service."""
        active = self.frontend.active_subscriptions()
        return self.service.recommend_for(self.user_id, now, active)

    def apply_recommendations(self, recommendations: Sequence[Recommendation], now: float) -> int:
        return self.frontend.apply_recommendations(list(recommendations), now)

    def receive_peer_recommendation(self, recommendation: Recommendation, now: float) -> bool:
        """Accept a recommendation gossiped by a peer (rebound to this user)."""
        rebound = Recommendation(
            user_id=self.user_id,
            action=recommendation.action,
            subscription=self.interface.make_topic_subscription(
                _subscription_topic_value(recommendation.subscription) or "",
                subscriber=self.user_id,
            )
            if _subscription_topic_value(recommendation.subscription)
            else recommendation.subscription,
            reason=f"peer recommendation ({recommendation.reason})",
            score=recommendation.score,
        )
        self.peer_recommendations.append(rebound)
        already = {
            sub.describe() for sub in self.frontend.active_subscriptions()
        }
        if rebound.subscription.describe() in already:
            return False
        return self.frontend.apply_recommendation(rebound, now)

    # -- privacy accounting ------------------------------------------------------

    def attention_bytes_shared(self) -> int:
        """Bytes of raw attention data sent off-host (always zero by design)."""
        return 0


class DistributedReef:
    """End-to-end assembly of the peer-to-peer architecture (Figure 2)."""

    def __init__(
        self,
        web: SyntheticWeb,
        users: Dict[str, BrowsingUser],
        rng: SeededRNG,
        config: Optional[ReefConfig] = None,
        engine: Optional[SimulationEngine] = None,
        http: Optional[SimulatedHttp] = None,
    ) -> None:
        self.web = web
        self.users = users
        self.rng = rng
        self.config = config if config is not None else ReefConfig()
        self.engine = engine if engine is not None else SimulationEngine()
        self.metrics = MetricsRegistry()
        self.http = http if http is not None else SimulatedHttp(web.directory, metrics=self.metrics)
        self.pubsub = PubSubSystem(metrics=self.metrics)
        self.proxy = FeedEventsProxy(
            self.http, poll_interval=self.config.recommendation_interval, metrics=self.metrics
        )
        self.interface = feed_interface_spec()
        self.grouping = PeerGroupingService(self.config)
        self.collaborative = CollaborativeRecommender(self.interface, self.grouping, self.config)
        self.reaction_model = ReactionModel(rng.fork("reactions"))
        self.peers: Dict[str, ReefPeer] = {}
        for user_id, user in users.items():
            peer = ReefPeer(
                user_id,
                self.pubsub,
                interface=self.interface,
                config=self.config,
                metrics=self.metrics,
            )
            peer.recorder.attach_to_browser(user.browser)
            self.peers[user_id] = peer
        self.gossip_messages = 0

    # -- simulation driving -----------------------------------------------------------

    def run(self, days: float, collaborative: bool = False) -> None:
        """Run the distributed closed loop for ``days`` of simulated time."""
        seconds = days * 86400.0
        for user in self.users.values():
            user.browse_days(days)
        self.feed_publisher = FeedPublisher(
            self.web.feeds, self.web.topic_model, self.rng.fork("feed-publisher")
        )
        self.feed_publisher.start(
            self.engine, interval=self.config.recommendation_interval, until=seconds
        )
        self._schedule_local_cycles(seconds, collaborative)
        self._schedule_feed_polls(seconds)
        self.engine.run(until=seconds)
        for peer in self.peers.values():
            peer.recorder.flush(self.engine.now)
        self._local_cycle(self.engine.now, collaborative)

    def _schedule_local_cycles(self, until: float, collaborative: bool) -> None:
        def cycle(engine: SimulationEngine) -> None:
            for peer in self.peers.values():
                peer.recorder.flush(engine.now)
            self._local_cycle(engine.now, collaborative)

        self.engine.schedule_periodic(
            self.config.recommendation_interval, cycle, label="peer-cycle", until=until
        )

    def _schedule_feed_polls(self, until: float) -> None:
        def poll(engine: SimulationEngine) -> None:
            events = self.proxy.poll_all(engine.now)
            for event in events:
                deliveries = self.pubsub.publish(event)
                self.metrics.counter("flow.events").increment(len(deliveries))
            for user_id, peer in self.peers.items():
                peer.frontend.expire_items(engine.now)
                self.reaction_model.react(peer.frontend, self.users[user_id], engine.now)
                removed = peer.frontend.lifecycle.apply_unsubscribe_policy(engine.now, user_id)
                for managed in removed:
                    self._unsubscribe(peer, managed.subscription_id, engine.now)

        self.engine.schedule_periodic(
            self.config.recommendation_interval, poll, label="feed-poll", until=until
        )

    def _local_cycle(self, now: float, collaborative: bool) -> None:
        for user_id, peer in self.peers.items():
            peer.analyze_attention(now)
            recommendations = peer.recommend(now)
            for recommendation in recommendations:
                applied = peer.frontend.apply_recommendation(recommendation, now)
                if applied:
                    self.metrics.counter("flow.sub_unsub").increment()
                    topic = _subscription_topic_value(recommendation.subscription)
                    if topic:
                        self.proxy.subscribe(user_id, topic)
                        self.collaborative.observe_topic(user_id, topic, recommendation.score)
        if collaborative:
            self._exchange_recommendations(now)

    def _exchange_recommendations(self, now: float) -> None:
        """Group peers by interest similarity and gossip recommendations."""
        vectors = {
            user_id: peer.interest_model.term_vector(now)
            for user_id, peer in self.peers.items()
        }
        self.grouping.form_groups(vectors)
        self.collaborative.rebuild_group_profiles()
        for user_id, peer in self.peers.items():
            recommendations = self.collaborative.recommend(user_id, now)
            for recommendation in recommendations:
                self.gossip_messages += 1
                self.metrics.counter("flow.gossip").increment()
                applied = peer.receive_peer_recommendation(recommendation, now)
                if applied:
                    self.metrics.counter("flow.sub_unsub").increment()
                    topic = _subscription_topic_value(recommendation.subscription)
                    if topic:
                        self.proxy.subscribe(user_id, topic)

    def _unsubscribe(self, peer: ReefPeer, subscription_id: str, now: float) -> None:
        managed = peer.frontend.lifecycle.get(subscription_id)
        removed = peer.frontend.unsubscribe(subscription_id, now, by_user=False)
        if removed:
            self.metrics.counter("flow.sub_unsub").increment()
            if managed is not None:
                topic = _subscription_topic_value(managed.subscription)
                if topic:
                    self.proxy.unsubscribe(peer.user_id, topic)

    # -- reporting ----------------------------------------------------------------------

    def flow_statistics(self) -> Dict[str, float]:
        """Message counts per Figure 2 edge plus privacy/crawl accounting."""
        return {
            "attention_messages": 0.0,
            "attention_bytes": float(
                sum(peer.attention_bytes_shared() for peer in self.peers.values())
            ),
            "recommendation_messages": 0.0,
            "gossip_messages": float(self.gossip_messages),
            "sub_unsub_messages": self.metrics.counter("flow.sub_unsub").value,
            "event_deliveries": self.metrics.counter("flow.events").value,
            "crawler_fetches": 0.0,
        }

    def recommendation_statistics(self, days: float) -> Dict[str, float]:
        total = sum(
            peer.service.subscribe_recommendation_count(peer.user_id)
            for peer in self.peers.values()
        )
        users = max(len(self.peers), 1)
        return {
            "feed_recommendations": float(total),
            "recommendations_per_user_per_day": total / users / max(days, 1e-9),
        }
