"""Attention recorder and click storage.

"Our attention recorder, implemented as a browser extension, logs every
outgoing HTTP request and periodically forwards batches of requests to a
Reef server.  Several attributes, such as a timestamp and a user cookie,
are logged along with the URI of the request.  This unit of attention data
is called a click."  (Section 3.1)

:class:`AttentionRecorder` plays the browser-extension role: it hooks into
a simulated :class:`~repro.web.browser.Browser`, records clicks, and hands
off batches.  :class:`AttentionStore` is the server-side click database of
the centralized design (and the local store of the distributed design).
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.web.browser import Browser
from repro.web.pages import WebPage
from repro.web.urls import parse_url

_cookie_counter = itertools.count(1)


def issue_cookie() -> str:
    """Issue a fresh user cookie (ties clicks to a user, as in the paper)."""
    return f"cookie-{next(_cookie_counter):06d}"


@dataclass(frozen=True)
class Click:
    """One unit of attention data."""

    url: str
    timestamp: float
    cookie: str
    user_id: str = ""
    referrer: str = ""

    @property
    def server(self) -> str:
        return parse_url(self.url).host


@dataclass
class AttentionBatch:
    """A batch of clicks uploaded from a recorder to a Reef server."""

    user_id: str
    cookie: str
    clicks: List[Click] = field(default_factory=list)
    sent_at: float = 0.0

    def size_bytes(self, bytes_per_click: int = 96) -> int:
        return len(self.clicks) * bytes_per_click

    def __len__(self) -> int:
        return len(self.clicks)


BatchSink = Callable[[AttentionBatch], None]


class AttentionRecorder:
    """Client-side recorder of user attention (the browser extension)."""

    def __init__(
        self,
        user_id: str,
        cookie: Optional[str] = None,
        batch_size: int = 200,
    ) -> None:
        self.user_id = user_id
        self.cookie = cookie if cookie is not None else issue_cookie()
        self.batch_size = batch_size
        self._pending: List[Click] = []
        self._sinks: List[BatchSink] = []
        self.clicks_recorded = 0
        # Pages seen locally; the distributed design reads page text from
        # the browser cache instead of crawling.
        self.local_pages: Dict[str, WebPage] = {}

    # -- wiring --------------------------------------------------------------

    def attach_to_browser(self, browser: Browser) -> None:
        """Hook the recorder into a browser's visit stream."""
        browser.add_visit_listener(self._on_visit)

    def add_sink(self, sink: BatchSink) -> None:
        """Register a destination for flushed batches (e.g. the Reef server
        uploader, or the local parser in the distributed design)."""
        self._sinks.append(sink)

    # -- recording ------------------------------------------------------------

    def _on_visit(self, url: str, timestamp: float, page: Optional[WebPage]) -> None:
        self.record(url, timestamp)
        if page is not None:
            self.local_pages[parse_url(url).full] = page

    def record(self, url: str, timestamp: float, referrer: str = "") -> Click:
        """Record a single click."""
        click = Click(
            url=parse_url(url).full,
            timestamp=timestamp,
            cookie=self.cookie,
            user_id=self.user_id,
            referrer=referrer,
        )
        self._pending.append(click)
        self.clicks_recorded += 1
        if len(self._pending) >= self.batch_size:
            self.flush(timestamp)
        return click

    def flush(self, now: float = 0.0) -> Optional[AttentionBatch]:
        """Send all pending clicks to the registered sinks."""
        if not self._pending:
            return None
        batch = AttentionBatch(
            user_id=self.user_id,
            cookie=self.cookie,
            clicks=list(self._pending),
            sent_at=now,
        )
        self._pending.clear()
        for sink in self._sinks:
            sink(batch)
        return batch

    @property
    def pending_clicks(self) -> int:
        return len(self._pending)


class AttentionStore:
    """Click database: stores clicks per user and answers aggregate queries.

    This is the component whose aggregate statistics the paper reports for
    experiment E1: total requests, distinct servers, requests to ad servers,
    servers visited only once, etc.
    """

    def __init__(self) -> None:
        self._clicks: List[Click] = []
        self._by_user: Dict[str, List[Click]] = {}
        self._cookie_to_user: Dict[str, str] = {}

    def store_batch(self, batch: AttentionBatch) -> int:
        """Store a batch; the cookie ties clicks to the user."""
        self._cookie_to_user[batch.cookie] = batch.user_id
        for click in batch.clicks:
            self.store_click(click)
        return len(batch.clicks)

    def store_click(self, click: Click) -> None:
        user = click.user_id or self._cookie_to_user.get(click.cookie, click.cookie)
        self._clicks.append(click)
        self._by_user.setdefault(user, []).append(click)

    # -- queries ---------------------------------------------------------------

    def total_clicks(self) -> int:
        return len(self._clicks)

    def users(self) -> List[str]:
        return sorted(self._by_user)

    def clicks_for(self, user_id: str) -> List[Click]:
        return list(self._by_user.get(user_id, ()))

    def urls_for(self, user_id: str) -> List[str]:
        return [click.url for click in self._by_user.get(user_id, ())]

    def distinct_urls(self, user_id: Optional[str] = None) -> List[str]:
        clicks = self._clicks if user_id is None else self._by_user.get(user_id, [])
        seen: Dict[str, None] = {}
        for click in clicks:
            seen.setdefault(click.url, None)
        return list(seen)

    def server_visit_counts(self, user_id: Optional[str] = None) -> Dict[str, int]:
        """Requests per distinct server (the unit of Table E1)."""
        clicks = self._clicks if user_id is None else self._by_user.get(user_id, [])
        counts: Counter = Counter(click.server for click in clicks)
        return dict(counts)

    def distinct_servers(self, user_id: Optional[str] = None) -> int:
        return len(self.server_visit_counts(user_id))

    def servers_visited_once(self) -> int:
        return sum(1 for count in self.server_visit_counts().values() if count == 1)

    def clicks_on_servers(self, servers: Iterable[str]) -> int:
        wanted = set(servers)
        return sum(1 for click in self._clicks if click.server in wanted)

    def clicks_between(self, start: float, end: float) -> List[Click]:
        return [click for click in self._clicks if start <= click.timestamp < end]

    def __len__(self) -> int:
        return len(self._clicks)
