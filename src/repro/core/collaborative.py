"""Collaborative recommendations across users.

The centralized design "resembles a large-scale search engine in that it
indexes a lot of data on behalf of many users.  Such large data collections
are fit for many data mining applications such as collaborative
subscription recommendations across applications, mediums, and users."
(Section 3)

In the distributed design "peers can be grouped for the exchange of
recommendations using collaborative techniques" (Section 4), following the
I-SPY-style *group profile* idea discussed in Section 5.2: instead of a per
user model, users with similar attention are grouped and the group's pooled
behaviour drives recommendations for all members.

This module provides the shared machinery: pairwise user similarity from
interest term vectors, greedy group formation, group profiles, and a
collaborative recommender that proposes to each member the subscriptions
that are popular with (and appreciated by) the rest of the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import ReefConfig
from repro.core.interest import cosine_similarity
from repro.core.recommender import Recommendation, RecommendationAction, Recommender
from repro.pubsub.interface import InterfaceSpec
from repro.pubsub.subscriptions import Subscription


@dataclass(frozen=True)
class UserSimilarity:
    """Similarity between two users' interest vectors."""

    first: str
    second: str
    similarity: float


def pairwise_similarities(
    term_vectors: Mapping[str, Mapping[str, float]]
) -> List[UserSimilarity]:
    """Cosine similarity for every pair of users (sorted, most similar first)."""
    users = sorted(term_vectors)
    result: List[UserSimilarity] = []
    for index, first in enumerate(users):
        for second in users[index + 1:]:
            similarity = cosine_similarity(term_vectors[first], term_vectors[second])
            result.append(UserSimilarity(first=first, second=second, similarity=similarity))
    result.sort(key=lambda pair: (-pair.similarity, pair.first, pair.second))
    return result


@dataclass
class GroupProfile:
    """A community of users with similar interests (I-SPY style)."""

    group_id: str
    members: List[str] = field(default_factory=list)
    # topic value -> how many members' attention supports it
    topic_support: Dict[str, float] = field(default_factory=dict)
    # topic value -> aggregated positive feedback from members
    topic_feedback: Dict[str, float] = field(default_factory=dict)

    def add_member(self, user_id: str) -> None:
        if user_id not in self.members:
            self.members.append(user_id)

    def observe_topic(self, topic: str, weight: float = 1.0) -> None:
        self.topic_support[topic] = self.topic_support.get(topic, 0.0) + weight

    def observe_feedback(self, topic: str, score: float) -> None:
        self.topic_feedback[topic] = self.topic_feedback.get(topic, 0.0) + score

    def ranked_topics(self) -> List[Tuple[str, float]]:
        """Topics ranked by support plus feedback."""
        combined = {
            topic: support + self.topic_feedback.get(topic, 0.0)
            for topic, support in self.topic_support.items()
        }
        return sorted(combined.items(), key=lambda item: (-item[1], item[0]))

    def __len__(self) -> int:
        return len(self.members)


class PeerGroupingService:
    """Forms interest groups from user term vectors.

    Greedy agglomeration: users are considered in order of decreasing best
    pairwise similarity; a user joins the group of its most similar already
    grouped peer when the similarity clears the configured threshold and
    the group has room, otherwise it seeds a new group.
    """

    def __init__(self, config: Optional[ReefConfig] = None) -> None:
        self.config = config if config is not None else ReefConfig()
        self.groups: Dict[str, GroupProfile] = {}
        self._membership: Dict[str, str] = {}

    def form_groups(
        self, term_vectors: Mapping[str, Mapping[str, float]]
    ) -> List[GroupProfile]:
        """(Re)build all groups from scratch from the given vectors."""
        self.groups.clear()
        self._membership.clear()
        users = sorted(term_vectors)
        if not users:
            return []
        similarities = pairwise_similarities(term_vectors)
        best_match: Dict[str, Tuple[str, float]] = {}
        for pair in similarities:
            for user, other in ((pair.first, pair.second), (pair.second, pair.first)):
                current = best_match.get(user)
                if current is None or pair.similarity > current[1]:
                    best_match[user] = (other, pair.similarity)

        # Seed groups from the most similar pairs first.
        ordered_users = sorted(
            users, key=lambda user: -best_match.get(user, ("", 0.0))[1]
        )
        for user in ordered_users:
            if user in self._membership:
                continue
            match = best_match.get(user)
            if match is not None and match[1] >= self.config.peer_similarity_threshold:
                partner, _ = match
                partner_group = self._membership.get(partner)
                if partner_group is not None:
                    group = self.groups[partner_group]
                    if len(group) < self.config.max_peer_group_size:
                        group.add_member(user)
                        self._membership[user] = group.group_id
                        continue
                else:
                    group = self._new_group()
                    group.add_member(user)
                    group.add_member(partner)
                    self._membership[user] = group.group_id
                    self._membership[partner] = group.group_id
                    continue
            group = self._new_group()
            group.add_member(user)
            self._membership[user] = group.group_id
        return list(self.groups.values())

    def _new_group(self) -> GroupProfile:
        group = GroupProfile(group_id=f"group-{len(self.groups) + 1:03d}")
        self.groups[group.group_id] = group
        return group

    def group_of(self, user_id: str) -> Optional[GroupProfile]:
        group_id = self._membership.get(user_id)
        return self.groups.get(group_id) if group_id is not None else None

    def peers_of(self, user_id: str) -> List[str]:
        group = self.group_of(user_id)
        if group is None:
            return []
        return [member for member in group.members if member != user_id]


class CollaborativeRecommender(Recommender):
    """Recommends subscriptions that a user's peer group appreciates.

    The per-user topic observations (feed URLs or keywords supported by the
    user's own attention) are pooled into the user's group profile; each
    user is then recommended the group's top topics that their own attention
    has not yet surfaced.
    """

    name = "collaborative"

    def __init__(
        self,
        interface: InterfaceSpec,
        grouping: PeerGroupingService,
        config: Optional[ReefConfig] = None,
    ) -> None:
        self.interface = interface
        self.grouping = grouping
        self.config = config if config is not None else ReefConfig()
        # user -> topic -> weight observed from that user's own attention
        self._user_topics: Dict[str, Dict[str, float]] = {}
        self._already_recommended: Dict[str, Set[str]] = {}

    def observe_topic(self, user_id: str, topic: str, weight: float = 1.0) -> None:
        topics = self._user_topics.setdefault(user_id, {})
        topics[topic] = topics.get(topic, 0.0) + weight
        group = self.grouping.group_of(user_id)
        if group is not None:
            group.observe_topic(topic, weight)

    def observe_feedback(self, user_id: str, topic: str, score: float) -> None:
        group = self.grouping.group_of(user_id)
        if group is not None:
            group.observe_feedback(topic, score)

    def rebuild_group_profiles(self) -> None:
        """Re-pool user topic observations into the (re)formed groups."""
        for group in self.grouping.groups.values():
            group.topic_support.clear()
        for user_id, topics in self._user_topics.items():
            group = self.grouping.group_of(user_id)
            if group is None:
                continue
            for topic, weight in topics.items():
                group.observe_topic(topic, weight)

    def recommend(
        self,
        user_id: str,
        now: float,
        active_subscriptions: Sequence[Subscription] = (),
    ) -> List[Recommendation]:
        group = self.grouping.group_of(user_id)
        if group is None or len(group) < 2:
            return []
        own_topics = set(self._user_topics.get(user_id, ()))
        already = self._already_recommended.setdefault(user_id, set())
        recommendations = []
        limit = self.config.max_feed_recommendations_per_cycle
        for topic, score in group.ranked_topics():
            if len(recommendations) >= limit:
                break
            if topic in own_topics or topic in already:
                continue
            try:
                subscription = self.interface.make_topic_subscription(topic, subscriber=user_id)
            except ValueError:
                continue
            recommendations.append(
                Recommendation(
                    user_id=user_id,
                    action=RecommendationAction.SUBSCRIBE,
                    subscription=subscription,
                    reason=f"popular with peer group {group.group_id}",
                    score=score,
                )
            )
            already.add(topic)
        return recommendations
