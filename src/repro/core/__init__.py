"""Reef: automatic subscription management from user attention data.

This package is the paper's contribution.  The four architectural
components of Section 2.2 map onto modules as follows:

* attention recorder  -> :mod:`repro.core.attention`
* attention parser    -> :mod:`repro.core.parser`
* recommendation service -> :mod:`repro.core.recommender`,
  :mod:`repro.core.collaborative`, :mod:`repro.core.interest`
* subscription frontend -> :mod:`repro.core.frontend`,
  :mod:`repro.core.lifecycle`, :mod:`repro.core.feedback`

The two deployment architectures of Sections 3 and 4 are assembled in
:mod:`repro.core.centralized` (Figure 1) and :mod:`repro.core.distributed`
(Figure 2).
"""

from repro.core.attention import AttentionBatch, AttentionRecorder, AttentionStore, Click
from repro.core.centralized import CentralizedReef, ReefClient, ReefServer
from repro.core.collaborative import GroupProfile, PeerGroupingService, UserSimilarity
from repro.core.config import ReefConfig
from repro.core.distributed import DistributedReef, ReefPeer
from repro.core.feedback import FeedbackEvent, FeedbackKind, FeedbackLoop
from repro.core.frontend import SidebarItem, SubscriptionFrontend
from repro.core.interest import InterestModel, TermInterest
from repro.core.lifecycle import ManagedSubscription, SubscriptionLifecycleManager
from repro.core.parser import (
    AttentionParser,
    FeedUrlExtractor,
    KeywordExtractor,
    ParsedToken,
    StockSymbolExtractor,
)
from repro.core.recommender import (
    ContentQueryRecommender,
    Recommendation,
    RecommendationAction,
    RecommendationService,
    TopicFeedRecommender,
)

__all__ = [
    "Click",
    "AttentionBatch",
    "AttentionRecorder",
    "AttentionStore",
    "AttentionParser",
    "ParsedToken",
    "FeedUrlExtractor",
    "StockSymbolExtractor",
    "KeywordExtractor",
    "InterestModel",
    "TermInterest",
    "Recommendation",
    "RecommendationAction",
    "RecommendationService",
    "TopicFeedRecommender",
    "ContentQueryRecommender",
    "GroupProfile",
    "UserSimilarity",
    "PeerGroupingService",
    "SubscriptionLifecycleManager",
    "ManagedSubscription",
    "SubscriptionFrontend",
    "SidebarItem",
    "FeedbackLoop",
    "FeedbackEvent",
    "FeedbackKind",
    "ReefConfig",
    "CentralizedReef",
    "ReefServer",
    "ReefClient",
    "DistributedReef",
    "ReefPeer",
]
