"""Configuration shared by Reef components and deployments."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ReefConfig:
    """Tunable parameters of a Reef deployment.

    Defaults mirror the prototype described in the paper where a value is
    stated (e.g. attention batches are uploaded periodically, sidebar items
    expire if ignored) and use sensible engineering defaults elsewhere.
    """

    # Attention recorder ----------------------------------------------------
    #: seconds between uploads of batched clicks to the Reef server.
    attention_batch_interval: float = 900.0
    #: maximum clicks per uploaded batch.
    attention_batch_size: int = 200

    # Crawler / recommendation cycle ------------------------------------------
    #: seconds between periodic crawl-and-recommend cycles on the server.
    recommendation_interval: float = 3600.0
    #: maximum URIs crawled per cycle.
    crawl_batch_limit: int = 500

    # Topic-based (feed) recommendations ----------------------------------------
    #: minimum distinct visits to a server before its feeds are recommended.
    min_server_visits_for_feed: int = 1
    #: cap on new feed recommendations per user per recommendation cycle.
    max_feed_recommendations_per_cycle: int = 10

    # Content-based recommendations ----------------------------------------------
    #: number of query terms to select with the Offer Weight formula
    #: (the paper found 30 optimal).
    content_query_terms: int = 30
    #: exponent of the term-frequency modification to the Offer Weight.
    offer_weight_tf_exponent: float = 1.0
    #: minimum attention documents a term must appear in.
    min_term_attention_documents: int = 2

    # Subscription lifecycle ---------------------------------------------------------
    #: sidebar items ignored for this long expire and count as negative feedback.
    sidebar_expiry: float = 6 * 3600.0
    #: updates per day above which a subscription is a flooding candidate.
    max_updates_per_day: float = 20.0
    #: consecutive ignored events after which an unsubscribe is recommended.
    unsubscribe_after_ignored: int = 15
    #: minimum click-through rate to keep a subscription alive once it has
    #: delivered at least ``unsubscribe_after_ignored`` events.
    min_click_through_rate: float = 0.05

    # Collaborative recommendations --------------------------------------------------
    #: cosine similarity above which two users are grouped.
    peer_similarity_threshold: float = 0.25
    #: maximum size of a peer group.
    max_peer_group_size: int = 10

    # Privacy / network accounting -----------------------------------------------------
    #: nominal bytes per uploaded click (URI + timestamp + cookie).
    bytes_per_click: int = 96

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.attention_batch_interval <= 0:
            raise ValueError("attention_batch_interval must be positive")
        if self.recommendation_interval <= 0:
            raise ValueError("recommendation_interval must be positive")
        if self.content_query_terms <= 0:
            raise ValueError("content_query_terms must be positive")
        if not 0 <= self.min_click_through_rate <= 1:
            raise ValueError("min_click_through_rate must be a probability")
        if self.max_peer_group_size < 2:
            raise ValueError("max_peer_group_size must be at least 2")
