"""Centralized Reef (Figure 1 of the paper).

One central :class:`ReefServer` stores attention data for every user,
crawls the visited URIs, and sends subscription recommendations to each
user's :class:`ReefClient` (the browser-extension role).  Clients execute
the recommendations against the publish-subscribe substrate and receive
events directly from it.

Message flows are labelled with the edge numbers of Figure 1 so that the
F1 benchmark can report traffic per edge:

1. attention (client -> server)
2. recommendation (server -> client)
3. sub/unsub (client -> substrate)
4. events (substrate -> client)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.attention import AttentionBatch, AttentionRecorder, AttentionStore
from repro.core.config import ReefConfig
from repro.core.frontend import SubscriptionFrontend
from repro.core.interest import InterestModel
from repro.core.parser import AttentionParser
from repro.core.recommender import (
    ContentQueryRecommender,
    Recommendation,
    RecommendationService,
    TopicFeedRecommender,
)
from repro.pubsub.api import DeliveredEvent, PubSubSystem
from repro.pubsub.interface import InterfaceSpec, feed_interface_spec
from repro.pubsub.proxy import FeedEventsProxy
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Message, NetworkNode, SimulatedNetwork
from repro.sim.rng import SeededRNG
from repro.web.crawler import Crawler, PageClassification
from repro.web.feeds import FeedPublisher
from repro.web.http import SimulatedHttp
from repro.web.user_model import BrowsingUser
from repro.web.webgraph import SyntheticWeb

SERVER_NODE = "reef-server"


def client_node_name(user_id: str) -> str:
    return f"client:{user_id}"


class ReefServer(NetworkNode):
    """The centralized back-end: click database, crawler, recommenders."""

    def __init__(
        self,
        http: SimulatedHttp,
        interface: Optional[InterfaceSpec] = None,
        config: Optional[ReefConfig] = None,
        content_recommender: Optional[ContentQueryRecommender] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(SERVER_NODE)
        self.config = config if config is not None else ReefConfig()
        self.interface = interface if interface is not None else feed_interface_spec()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = AttentionStore()
        self.crawler = Crawler(http, metrics=self.metrics)
        self.topic_recommender = TopicFeedRecommender(self.interface, self.config)
        self.content_recommender = content_recommender
        recommenders = [self.topic_recommender]
        if content_recommender is not None:
            recommenders.append(content_recommender)
        self.service = RecommendationService(recommenders, self.config)
        self.interest_models: Dict[str, InterestModel] = {}
        # URIs awaiting the next crawl cycle, per user.
        self._crawl_queue: Dict[str, List[str]] = {}
        self.recommendations_sent: List[Recommendation] = []

    # -- attention intake -----------------------------------------------------

    def handle_message(self, message: Message, network: SimulatedNetwork) -> None:
        if message.kind == "attention":
            batch = message.payload
            if isinstance(batch, AttentionBatch):
                self.receive_attention(batch)
            return
        raise ValueError(f"ReefServer cannot handle message kind {message.kind!r}")

    def receive_attention(self, batch: AttentionBatch) -> int:
        """Store an uploaded batch and queue its URIs for crawling."""
        stored = self.store.store_batch(batch)
        self.metrics.counter("server.attention_batches").increment()
        self.metrics.counter("server.clicks_stored").increment(stored)
        queue = self._crawl_queue.setdefault(batch.user_id, [])
        queue.extend(click.url for click in batch.clicks)
        return stored

    def interest_model_for(self, user_id: str) -> InterestModel:
        model = self.interest_models.get(user_id)
        if model is None:
            model = InterestModel(user_id)
            self.interest_models[user_id] = model
        return model

    # -- crawl + recommend cycle -------------------------------------------------

    def run_crawl_cycle(self, now: float) -> Dict[str, int]:
        """Crawl queued URIs and fold the findings into recommender state."""
        crawled_per_user: Dict[str, int] = {}
        for user_id, queue in self._crawl_queue.items():
            if not queue:
                continue
            batch, remainder = queue[: self.config.crawl_batch_limit], queue[self.config.crawl_batch_limit:]
            self._crawl_queue[user_id] = remainder
            results = self.crawler.crawl_batch(batch, timestamp=now)
            crawled_per_user[user_id] = len(results)
            model = self.interest_model_for(user_id)
            for result in results:
                if result.classification is not PageClassification.CONTENT:
                    continue
                for feed_url in result.feed_urls:
                    self.topic_recommender.observe_feed(user_id, feed_url)
                if result.keywords:
                    model.observe_terms(
                        {term: float(count) for term, count in result.keywords.items()}, now
                    )
                    if self.content_recommender is not None:
                        self.content_recommender.observe_document(user_id, result.keywords)
                model.observe_server(result.server, now)
        return crawled_per_user

    def recommend_for(
        self, user_id: str, now: float, active_subscriptions: Sequence = ()
    ) -> List[Recommendation]:
        recommendations = self.service.recommend_for(user_id, now, active_subscriptions)
        self.recommendations_sent.extend(recommendations)
        self.metrics.counter("server.recommendations").increment(len(recommendations))
        return recommendations


class ReefClient(NetworkNode):
    """The user-side browser extension plus subscription frontend."""

    def __init__(
        self,
        user_id: str,
        recorder: AttentionRecorder,
        frontend: SubscriptionFrontend,
        network: SimulatedNetwork,
        proxy: Optional[FeedEventsProxy] = None,
        config: Optional[ReefConfig] = None,
    ) -> None:
        super().__init__(client_node_name(user_id))
        self.user_id = user_id
        self.recorder = recorder
        self.frontend = frontend
        self.network = network
        self.proxy = proxy
        self.config = config if config is not None else ReefConfig()
        self.recorder.add_sink(self._upload_batch)

    # -- edge 1: attention upload -----------------------------------------------

    def _upload_batch(self, batch: AttentionBatch) -> None:
        self.network.send(
            self.name,
            SERVER_NODE,
            kind="attention",
            payload=batch,
            size_bytes=batch.size_bytes(self.config.bytes_per_click),
        )

    def flush_attention(self, now: float) -> None:
        self.recorder.flush(now)

    # -- edge 2: recommendations arrive -------------------------------------------

    def handle_message(self, message: Message, network: SimulatedNetwork) -> None:
        if message.kind == "recommendation":
            recommendation = message.payload
            if isinstance(recommendation, Recommendation):
                self.apply_recommendation(recommendation, network.engine.now)
            return
        raise ValueError(f"ReefClient cannot handle message kind {message.kind!r}")

    # -- edge 3: sub/unsub against the substrate ------------------------------------

    def apply_recommendation(self, recommendation: Recommendation, now: float) -> bool:
        applied = self.frontend.apply_recommendation(recommendation, now)
        if applied:
            self.network.metrics.counter("flow.sub_unsub").increment()
            if self.proxy is not None and recommendation.is_subscribe:
                feed_url = _topic_value(recommendation)
                if feed_url is not None:
                    self.proxy.subscribe(self.user_id, feed_url)
        return applied

    def unsubscribe(self, subscription_id: str, now: float, by_user: bool = True) -> bool:
        managed = self.frontend.lifecycle.get(subscription_id)
        removed = self.frontend.unsubscribe(subscription_id, now, by_user=by_user)
        if removed:
            self.network.metrics.counter("flow.sub_unsub").increment()
            if self.proxy is not None and managed is not None:
                feed_url = _subscription_topic_value(managed.subscription)
                if feed_url is not None:
                    self.proxy.unsubscribe(self.user_id, feed_url)
        return removed


def _topic_value(recommendation: Recommendation) -> Optional[str]:
    return _subscription_topic_value(recommendation.subscription)


def _subscription_topic_value(subscription) -> Optional[str]:
    for predicate in subscription.predicates:
        if predicate.value is not None:
            return str(predicate.value)
    return None


@dataclass
class ReactionModel:
    """How a synthetic user reacts to delivered sidebar items.

    Probability of clicking grows with the user's interest in the event's
    topic; otherwise the item is deleted or simply ignored (and later
    expires).  This is what closes the paper's implicit-feedback loop in
    simulation.
    """

    rng: SeededRNG
    click_base: float = 0.1
    click_interest_bonus: float = 0.6
    delete_probability: float = 0.2

    def react(self, frontend: SubscriptionFrontend, user: BrowsingUser, now: float) -> None:
        for item in list(frontend.unread_items()):
            event_topic = item.topic
            affinity = user.profile.affinity([event_topic]) if event_topic else 0.0
            click_probability = min(1.0, self.click_base + self.click_interest_bonus * affinity)
            roll = self.rng.random()
            if roll < click_probability:
                frontend.click_item(item.event_id, now)
            elif roll < click_probability + self.delete_probability:
                frontend.delete_item(item.event_id, now)
            # otherwise leave it unread; it may expire later.


class CentralizedReef:
    """End-to-end assembly of the centralized architecture (Figure 1)."""

    def __init__(
        self,
        web: SyntheticWeb,
        users: Dict[str, BrowsingUser],
        rng: SeededRNG,
        config: Optional[ReefConfig] = None,
        content_recommender: Optional[ContentQueryRecommender] = None,
        engine: Optional[SimulationEngine] = None,
        http: Optional[SimulatedHttp] = None,
    ) -> None:
        self.web = web
        self.users = users
        self.rng = rng
        self.config = config if config is not None else ReefConfig()
        self.engine = engine if engine is not None else SimulationEngine()
        self.metrics = MetricsRegistry()
        self.http = http if http is not None else SimulatedHttp(web.directory, metrics=self.metrics)
        self.network = SimulatedNetwork(self.engine, metrics=self.metrics)
        self.pubsub = PubSubSystem(metrics=self.metrics)
        self.proxy = FeedEventsProxy(self.http, poll_interval=self.config.recommendation_interval, metrics=self.metrics)
        self.interface = feed_interface_spec()
        self.server = ReefServer(
            self.http,
            interface=self.interface,
            config=self.config,
            content_recommender=content_recommender,
            metrics=self.metrics,
        )
        self.network.register(SERVER_NODE, self.server)
        self.clients: Dict[str, ReefClient] = {}
        self.reaction_model = ReactionModel(rng.fork("reactions"))
        for user_id, user in users.items():
            recorder = AttentionRecorder(user_id, batch_size=self.config.attention_batch_size)
            recorder.attach_to_browser(user.browser)
            frontend = SubscriptionFrontend(user_id, self.pubsub, config=self.config)
            client = ReefClient(
                user_id, recorder, frontend, self.network, proxy=self.proxy, config=self.config
            )
            self.network.register(client.name, client)
            self.clients[user_id] = client

    # -- simulation driving ----------------------------------------------------------

    def run(self, days: float) -> None:
        """Run the full closed loop for ``days`` of simulated time."""
        seconds = days * 86400.0
        self._schedule_browsing(days)
        self._schedule_feed_publishing(seconds)
        self._schedule_uploads(seconds)
        self._schedule_server_cycles(seconds)
        self._schedule_feed_polls(seconds)
        self.engine.run(until=seconds)
        # Final flush and recommendation cycle so trailing attention counts.
        for client in self.clients.values():
            client.flush_attention(self.engine.now)
        self.engine.run(until=seconds + 3600.0)
        self._server_cycle(self.engine.now)

    def _schedule_browsing(self, days: float) -> None:
        for user in self.users.values():
            user.browse_days(days)

    def _schedule_feed_publishing(self, until: float) -> None:
        publisher = FeedPublisher(self.web.feeds, self.web.topic_model, self.rng.fork("feed-publisher"))
        publisher.start(self.engine, interval=self.config.recommendation_interval, until=until)
        self.feed_publisher = publisher

    def _schedule_uploads(self, until: float) -> None:
        for client in self.clients.values():
            def flush(engine: SimulationEngine, client=client) -> None:
                client.flush_attention(engine.now)

            self.engine.schedule_periodic(
                self.config.attention_batch_interval, flush, label="attention-upload", until=until
            )

    def _schedule_server_cycles(self, until: float) -> None:
        def cycle(engine: SimulationEngine) -> None:
            self._server_cycle(engine.now)

        self.engine.schedule_periodic(
            self.config.recommendation_interval, cycle, label="reef-cycle", until=until
        )

    def _schedule_feed_polls(self, until: float) -> None:
        def poll(engine: SimulationEngine) -> None:
            events = self.proxy.poll_all(engine.now)
            for event in events:
                deliveries = self.pubsub.publish(event)
                self.metrics.counter("flow.events").increment(len(deliveries))
            for user_id, client in self.clients.items():
                client.frontend.expire_items(engine.now)
                self.reaction_model.react(client.frontend, self.users[user_id], engine.now)
                removed = client.frontend.lifecycle.apply_unsubscribe_policy(engine.now, user_id)
                for managed in removed:
                    client.unsubscribe(managed.subscription_id, engine.now, by_user=False)

        self.engine.schedule_periodic(
            self.config.recommendation_interval, poll, label="feed-poll", until=until
        )

    def _server_cycle(self, now: float) -> None:
        """One crawl + recommend cycle on the server (edge 2 messages)."""
        self.server.run_crawl_cycle(now)
        for user_id, client in self.clients.items():
            active = client.frontend.active_subscriptions()
            recommendations = self.server.recommend_for(user_id, now, active)
            for recommendation in recommendations:
                self.network.send(
                    SERVER_NODE,
                    client.name,
                    kind="recommendation",
                    payload=recommendation,
                    size_bytes=256,
                )

    # -- reporting --------------------------------------------------------------------

    def attention_statistics(self) -> Dict[str, float]:
        """The aggregate browsing-trace statistics of experiment E1."""
        store = self.server.store
        visit_counts = store.server_visit_counts()
        ad_hosts = {server.host for server in self.web.ad_servers}
        ad_requests = sum(count for host, count in visit_counts.items() if host in ad_hosts)
        ad_servers_seen = sum(1 for host in visit_counts if host in ad_hosts)
        total = store.total_clicks()
        return {
            "total_requests": float(total),
            "distinct_servers": float(len(visit_counts)),
            "ad_servers_visited": float(ad_servers_seen),
            "ad_request_fraction": (ad_requests / total) if total else 0.0,
            "servers_visited_once": float(store.servers_visited_once()),
            "non_ad_servers": float(len(visit_counts) - ad_servers_seen),
            "distinct_feeds_discovered": float(len(self.server.crawler.discovered_feeds())),
        }

    def recommendation_statistics(self, days: float) -> Dict[str, float]:
        total_recs = sum(
            1 for rec in self.server.recommendations_sent if rec.is_subscribe
        )
        users = max(len(self.users), 1)
        return {
            "feed_recommendations": float(total_recs),
            "recommendations_per_user_per_day": total_recs / users / max(days, 1e-9),
        }

    def flow_statistics(self) -> Dict[str, float]:
        """Message counts per Figure 1 edge."""
        return {
            "attention_messages": self.network.kind_message_count("attention"),
            "attention_bytes": self.network.kind_byte_count("attention"),
            "recommendation_messages": self.network.kind_message_count("recommendation"),
            "sub_unsub_messages": self.metrics.counter("flow.sub_unsub").value,
            "event_deliveries": self.metrics.counter("flow.events").value,
            "crawler_fetches": self.metrics.counter("crawler.fetches").value,
        }
