"""User interest models built from attention data.

The recommendation service needs a longer-lived model of a user's interests
than a single batch of clicks: which terms they keep reading about, which
servers they revisit, and how those interests change over time.  The model
supports exponential decay so stale interests fade — the mechanism behind
automatic *unsubscription* from topics the user stopped caring about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass
class TermInterest:
    """Interest in a single term."""

    term: str
    weight: float = 0.0
    last_updated: float = 0.0
    observations: int = 0


class InterestModel:
    """A decaying weighted bag of terms (and servers) per user.

    ``half_life`` controls how quickly interest decays with simulated time;
    the default of three weeks means interests persist across the paper's
    ten-week study but fade if not reinforced.
    """

    def __init__(self, user_id: str, half_life: float = 21 * 86400.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.user_id = user_id
        self.half_life = half_life
        self._terms: Dict[str, TermInterest] = {}
        self._servers: Dict[str, TermInterest] = {}

    # -- updates -----------------------------------------------------------

    def _decay_factor(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 1.0
        return 0.5 ** (elapsed / self.half_life)

    def _update(self, table: Dict[str, TermInterest], key: str, weight: float, now: float) -> None:
        entry = table.get(key)
        if entry is None:
            entry = TermInterest(term=key, weight=0.0, last_updated=now)
            table[key] = entry
        decayed = entry.weight * self._decay_factor(now - entry.last_updated)
        entry.weight = decayed + weight
        entry.last_updated = now
        entry.observations += 1

    def observe_terms(self, term_weights: Mapping[str, float], now: float) -> None:
        """Fold a batch of term weights (e.g. crawler keywords) into the model."""
        for term, weight in term_weights.items():
            if weight <= 0:
                continue
            self._update(self._terms, term, weight, now)

    def observe_server(self, server: str, now: float, weight: float = 1.0) -> None:
        self._update(self._servers, server, weight, now)

    # -- queries -------------------------------------------------------------

    def term_weight(self, term: str, now: Optional[float] = None) -> float:
        entry = self._terms.get(term)
        if entry is None:
            return 0.0
        if now is None:
            return entry.weight
        return entry.weight * self._decay_factor(now - entry.last_updated)

    def server_weight(self, server: str, now: Optional[float] = None) -> float:
        entry = self._servers.get(server)
        if entry is None:
            return 0.0
        if now is None:
            return entry.weight
        return entry.weight * self._decay_factor(now - entry.last_updated)

    def top_terms(self, n: int, now: Optional[float] = None) -> List[Tuple[str, float]]:
        weights = [
            (term, self.term_weight(term, now)) for term in self._terms
        ]
        weights.sort(key=lambda item: (-item[1], item[0]))
        return weights[:n]

    def top_servers(self, n: int, now: Optional[float] = None) -> List[Tuple[str, float]]:
        weights = [
            (server, self.server_weight(server, now)) for server in self._servers
        ]
        weights.sort(key=lambda item: (-item[1], item[0]))
        return weights[:n]

    def term_vector(self, now: Optional[float] = None) -> Dict[str, float]:
        """The full (decayed) term-weight vector; used for user similarity."""
        return {term: self.term_weight(term, now) for term in self._terms}

    @property
    def term_count(self) -> int:
        return len(self._terms)

    @property
    def server_count(self) -> int:
        return len(self._servers)


def cosine_similarity(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Cosine similarity between two sparse term-weight vectors."""
    if not first or not second:
        return 0.0
    smaller, larger = (first, second) if len(first) <= len(second) else (second, first)
    dot = sum(weight * larger.get(term, 0.0) for term, weight in smaller.items())
    norm_first = math.sqrt(sum(weight * weight for weight in first.values()))
    norm_second = math.sqrt(sum(weight * weight for weight in second.values()))
    if norm_first == 0 or norm_second == 0:
        return 0.0
    return dot / (norm_first * norm_second)
