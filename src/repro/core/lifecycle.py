"""Subscription lifecycle management.

The paper motivates automation by the burden of "devising appropriate
keywords, refining the query to control volume of updates, unsubscribing to
queries that are no longer relevant".  The lifecycle manager owns the full
life of each automatically placed subscription:

* activation when a SUBSCRIBE recommendation is accepted;
* volume control: subscriptions that flood the user (more updates per day
  than ``max_updates_per_day``) become unsubscribe candidates — the problem
  observed in Section 3.2 ("we still found enough feeds to overwhelm any
  user with updates");
* interest control: subscriptions whose events are consistently ignored or
  deleted (low click-through) become unsubscribe candidates;
* removal either on the server's recommendation or by the user directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ReefConfig
from repro.core.feedback import FeedbackLoop
from repro.pubsub.subscriptions import Subscription


class SubscriptionState(str, enum.Enum):
    """Lifecycle states of a managed subscription."""

    ACTIVE = "active"
    REMOVED_BY_USER = "removed_by_user"
    REMOVED_BY_RECOMMENDER = "removed_by_recommender"


@dataclass
class ManagedSubscription:
    """A subscription under lifecycle management."""

    subscription: Subscription
    user_id: str
    activated_at: float
    state: SubscriptionState = SubscriptionState.ACTIVE
    deactivated_at: Optional[float] = None
    events_delivered: int = 0
    origin: str = "recommendation"

    @property
    def subscription_id(self) -> str:
        return self.subscription.subscription_id

    def updates_per_day(self, now: float) -> float:
        """Average delivered events per day since activation."""
        elapsed_days = max((now - self.activated_at) / 86400.0, 1.0 / 24.0)
        return self.events_delivered / elapsed_days


class SubscriptionLifecycleManager:
    """Tracks active subscriptions and decides when to drop them."""

    def __init__(
        self,
        config: Optional[ReefConfig] = None,
        feedback: Optional[FeedbackLoop] = None,
    ) -> None:
        self.config = config if config is not None else ReefConfig()
        self.feedback = feedback if feedback is not None else FeedbackLoop()
        self._managed: Dict[str, ManagedSubscription] = {}

    # -- activation / removal ------------------------------------------------

    def activate(
        self,
        subscription: Subscription,
        user_id: str,
        now: float,
        origin: str = "recommendation",
    ) -> ManagedSubscription:
        managed = ManagedSubscription(
            subscription=subscription,
            user_id=user_id,
            activated_at=now,
            origin=origin,
        )
        self._managed[subscription.subscription_id] = managed
        return managed

    def remove(
        self, subscription_id: str, now: float, by_user: bool = False
    ) -> Optional[ManagedSubscription]:
        managed = self._managed.get(subscription_id)
        if managed is None or managed.state is not SubscriptionState.ACTIVE:
            return None
        managed.state = (
            SubscriptionState.REMOVED_BY_USER
            if by_user
            else SubscriptionState.REMOVED_BY_RECOMMENDER
        )
        managed.deactivated_at = now
        return managed

    # -- delivery accounting ----------------------------------------------------

    def record_delivery(self, subscription_id: str) -> None:
        managed = self._managed.get(subscription_id)
        if managed is not None:
            managed.events_delivered += 1

    # -- queries ------------------------------------------------------------------

    def get(self, subscription_id: str) -> Optional[ManagedSubscription]:
        return self._managed.get(subscription_id)

    def active_subscriptions(self, user_id: Optional[str] = None) -> List[ManagedSubscription]:
        return [
            managed
            for managed in self._managed.values()
            if managed.state is SubscriptionState.ACTIVE
            and (user_id is None or managed.user_id == user_id)
        ]

    def active_subscription_objects(self, user_id: Optional[str] = None) -> List[Subscription]:
        return [managed.subscription for managed in self.active_subscriptions(user_id)]

    def removed_subscriptions(self, user_id: Optional[str] = None) -> List[ManagedSubscription]:
        return [
            managed
            for managed in self._managed.values()
            if managed.state is not SubscriptionState.ACTIVE
            and (user_id is None or managed.user_id == user_id)
        ]

    # -- unsubscribe policy -----------------------------------------------------------

    def unsubscribe_candidates(self, now: float, user_id: Optional[str] = None) -> List[ManagedSubscription]:
        """Active subscriptions that the recommender should remove.

        A subscription is a candidate when it floods the user with updates
        or when the user demonstrably ignores it (enough deliveries with a
        click-through rate below the configured floor, or a long run of
        consecutively ignored events).
        """
        candidates = []
        for managed in self.active_subscriptions(user_id):
            if self._is_flooding(managed, now) or self._is_ignored(managed):
                candidates.append(managed)
        return candidates

    def _is_flooding(self, managed: ManagedSubscription, now: float) -> bool:
        # Give new subscriptions a day of grace before judging their volume.
        if now - managed.activated_at < 86400.0:
            return False
        return managed.updates_per_day(now) > self.config.max_updates_per_day

    def _is_ignored(self, managed: ManagedSubscription) -> bool:
        aggregate = self.feedback.feedback_for(managed.subscription_id)
        if aggregate is None:
            return False
        if aggregate.consecutive_ignored >= self.config.unsubscribe_after_ignored:
            return True
        if (
            aggregate.delivered >= self.config.unsubscribe_after_ignored
            and aggregate.click_through_rate < self.config.min_click_through_rate
        ):
            return True
        return False

    def apply_unsubscribe_policy(self, now: float, user_id: Optional[str] = None) -> List[ManagedSubscription]:
        """Remove every unsubscribe candidate; returns the removed set."""
        removed = []
        for managed in self.unsubscribe_candidates(now, user_id):
            self.remove(managed.subscription_id, now, by_user=False)
            removed.append(managed)
        return removed

    def __len__(self) -> int:
        return len(self._managed)
