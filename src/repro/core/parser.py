"""Attention parser: from raw attention data to candidate name-value pairs.

"This raw data is processed by an attention parser, which looks for tokens
that match the specification of name-value pairs of the publish-subscribe
system we are given.  For example, in a publish-subscribe system that
delivers stock quotes, the attention parser would be looking for known
stock symbols in the attention data.  Other examples of tokens are: feed
URLs, which can be used in Web feed subscriptions; or any commonly
occurring keywords, which can be used in many content-based systems."
(Section 2.2)

The parser is a pipeline of pluggable :class:`TokenExtractor` objects, each
of which understands one kind of token; extracted tokens are validated
against a target :class:`~repro.pubsub.interface.InterfaceSpec` so that
only tokens forming *valid* name-value pairs survive.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.attention import Click
from repro.ir.tokenize import TextAnalyzer
from repro.pubsub.interface import InterfaceSpec
from repro.web.pages import WebPage
from repro.web.urls import is_feed_url, parse_url


@dataclass(frozen=True)
class ParsedToken:
    """A token extracted from attention data, bound to an attribute name."""

    attribute: str
    value: str
    source: str
    weight: float = 1.0


class TokenExtractor:
    """Base class for attention token extractors."""

    name = "extractor"

    def extract_from_click(self, click: Click) -> List[ParsedToken]:
        """Tokens derivable from the click itself (its URI)."""
        return []

    def extract_from_page(self, click: Click, page: WebPage) -> List[ParsedToken]:
        """Tokens derivable from the content of the clicked page."""
        return []


class FeedUrlExtractor(TokenExtractor):
    """Finds feed URLs: both feed-looking URIs in clicks and autodiscovery
    links on visited pages."""

    name = "feed-url"

    def __init__(self, attribute: str = "feed_url") -> None:
        self.attribute = attribute

    def extract_from_click(self, click: Click) -> List[ParsedToken]:
        if is_feed_url(click.url):
            return [ParsedToken(self.attribute, click.url, source="click")]
        return []

    def extract_from_page(self, click: Click, page: WebPage) -> List[ParsedToken]:
        return [
            ParsedToken(self.attribute, feed_url.full, source="autodiscovery")
            for feed_url in page.feed_links
        ]


class StockSymbolExtractor(TokenExtractor):
    """The paper's stock-quote example: recognizes known ticker symbols in
    URIs and page text."""

    name = "stock-symbol"

    def __init__(self, symbols: Sequence[str], attribute: str = "symbol") -> None:
        self.symbols = {symbol.upper() for symbol in symbols}
        self.attribute = attribute

    def extract_from_click(self, click: Click) -> List[ParsedToken]:
        tokens = []
        url = parse_url(click.url)
        haystack = f"{url.path} {url.query}".upper()
        for piece in haystack.replace("/", " ").replace("?", " ").replace("=", " ").replace("&", " ").split():
            if piece in self.symbols:
                tokens.append(ParsedToken(self.attribute, piece, source="click"))
        return tokens

    def extract_from_page(self, click: Click, page: WebPage) -> List[ParsedToken]:
        tokens = []
        for word in page.text.upper().split():
            cleaned = word.strip(".,;:()")
            if cleaned in self.symbols:
                tokens.append(ParsedToken(self.attribute, cleaned, source="page"))
        return tokens


class KeywordExtractor(TokenExtractor):
    """Extracts commonly occurring keywords from visited page text."""

    name = "keyword"

    def __init__(
        self,
        attribute: str = "keyword",
        analyzer: Optional[TextAnalyzer] = None,
        per_page_limit: int = 25,
    ) -> None:
        self.attribute = attribute
        self.analyzer = analyzer if analyzer is not None else TextAnalyzer()
        self.per_page_limit = per_page_limit

    def extract_from_page(self, click: Click, page: WebPage) -> List[ParsedToken]:
        analyzed = self.analyzer.analyze(page.text)
        counts = Counter(analyzed.term_frequencies)
        return [
            ParsedToken(self.attribute, term, source="page", weight=float(count))
            for term, count in counts.most_common(self.per_page_limit)
        ]


class AttentionParser:
    """Runs token extractors over attention data and validates the result
    against a target publish-subscribe interface specification."""

    def __init__(
        self,
        interface: InterfaceSpec,
        extractors: Sequence[TokenExtractor],
    ) -> None:
        if not extractors:
            raise ValueError("the attention parser needs at least one extractor")
        self.interface = interface
        self.extractors = list(extractors)
        self.tokens_seen = 0
        self.tokens_valid = 0

    def parse_click(self, click: Click, page: Optional[WebPage] = None) -> List[ParsedToken]:
        """Parse a single click (and optionally the page it fetched)."""
        raw: List[ParsedToken] = []
        for extractor in self.extractors:
            raw.extend(extractor.extract_from_click(click))
            if page is not None:
                raw.extend(extractor.extract_from_page(click, page))
        return self._validate(raw)

    def parse_clicks(
        self,
        clicks: Iterable[Click],
        pages: Optional[Dict[str, WebPage]] = None,
    ) -> List[ParsedToken]:
        """Parse a stream of clicks; ``pages`` maps URL -> fetched page."""
        tokens: List[ParsedToken] = []
        pages = pages or {}
        for click in clicks:
            page = pages.get(click.url)
            tokens.extend(self.parse_click(click, page))
        return tokens

    def _validate(self, tokens: List[ParsedToken]) -> List[ParsedToken]:
        """Keep only tokens that form valid name-value pairs for the target
        interface (the parser's defining behaviour in the paper)."""
        valid: List[ParsedToken] = []
        for token in tokens:
            self.tokens_seen += 1
            spec = self.interface.attribute(token.attribute)
            if spec is None:
                continue
            if spec.accepts(token.value):
                self.tokens_valid += 1
                valid.append(token)
        return valid

    @staticmethod
    def aggregate(tokens: Iterable[ParsedToken]) -> Dict[str, Dict[str, float]]:
        """Aggregate token weights: attribute -> value -> total weight."""
        aggregated: Dict[str, Dict[str, float]] = {}
        for token in tokens:
            by_value = aggregated.setdefault(token.attribute, {})
            by_value[token.value] = by_value.get(token.value, 0.0) + token.weight
        return aggregated
