"""Subscription frontend: sidebar display, event expiry and user reactions.

"In response, a subscription frontend activates or deactivates
subscriptions, as well as receives and displays the events that arrive. ...
The events from subscriptions are displayed in a sidebar ... The user may
click on the event to view it in the browsing panel or click on a button to
delete it.  If the user ignores the event for a certain period of time, it
expires and disappears from the list." (Sections 2.2, 3.1)

The frontend executes recommendations against a publish-subscribe system,
queues delivered events into a sidebar, and converts user reactions (click
/ delete / expiry) into implicit feedback for the closed loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import ReefConfig
from repro.core.feedback import FeedbackKind, FeedbackLoop
from repro.core.lifecycle import SubscriptionLifecycleManager
from repro.core.recommender import Recommendation, RecommendationAction
from repro.pubsub.api import DeliveredEvent, PubSubSystem
from repro.pubsub.subscriptions import Subscription


class SidebarItemState(str, enum.Enum):
    """Display state of one sidebar entry."""

    UNREAD = "unread"
    CLICKED = "clicked"
    DELETED = "deleted"
    EXPIRED = "expired"


@dataclass
class SidebarItem:
    """One event shown in the sidebar."""

    event_id: str
    subscription_id: str
    title: str
    link: str
    delivered_at: float
    topic: str = ""
    state: SidebarItemState = SidebarItemState.UNREAD


class SubscriptionFrontend:
    """The user-facing component: places subscriptions, shows events."""

    def __init__(
        self,
        user_id: str,
        pubsub: PubSubSystem,
        lifecycle: Optional[SubscriptionLifecycleManager] = None,
        feedback: Optional[FeedbackLoop] = None,
        config: Optional[ReefConfig] = None,
    ) -> None:
        self.user_id = user_id
        self.pubsub = pubsub
        self.config = config if config is not None else ReefConfig()
        self.feedback = feedback if feedback is not None else FeedbackLoop()
        self.lifecycle = (
            lifecycle
            if lifecycle is not None
            else SubscriptionLifecycleManager(self.config, self.feedback)
        )
        self.sidebar: List[SidebarItem] = []
        self.recommendations_received: List[Recommendation] = []
        self.pubsub.register_subscriber(user_id, self._on_delivery)

    # -- recommendation handling -----------------------------------------------

    def apply_recommendation(self, recommendation: Recommendation, now: float) -> bool:
        """Execute a recommendation.

        "When the browser extension receives a server's recommendation, it
        automatically places that subscription." — SUBSCRIBE actions are
        applied unconditionally; UNSUBSCRIBE actions remove the matching
        subscription if it is still active.
        """
        if recommendation.user_id != self.user_id:
            raise ValueError(
                f"recommendation for {recommendation.user_id!r} sent to {self.user_id!r}"
            )
        self.recommendations_received.append(recommendation)
        if recommendation.action is RecommendationAction.SUBSCRIBE:
            self.pubsub.subscribe(recommendation.subscription)
            self.lifecycle.activate(
                recommendation.subscription, self.user_id, now, origin="recommendation"
            )
            return True
        return self.unsubscribe(recommendation.subscription.subscription_id, now, by_user=False)

    def apply_recommendations(self, recommendations: List[Recommendation], now: float) -> int:
        applied = 0
        for recommendation in recommendations:
            if self.apply_recommendation(recommendation, now):
                applied += 1
        return applied

    def subscribe_manually(self, subscription: Subscription, now: float) -> None:
        """A subscription the user placed themselves (kept out of the
        recommender's statistics but still lifecycle-managed)."""
        self.pubsub.subscribe(subscription)
        self.lifecycle.activate(subscription, self.user_id, now, origin="manual")

    def unsubscribe(self, subscription_id: str, now: float, by_user: bool = True) -> bool:
        removed = self.pubsub.unsubscribe(subscription_id)
        if removed:
            self.lifecycle.remove(subscription_id, now, by_user=by_user)
        return removed

    def active_subscriptions(self) -> List[Subscription]:
        return self.lifecycle.active_subscription_objects(self.user_id)

    # -- event display ------------------------------------------------------------

    def _on_delivery(self, delivered: DeliveredEvent) -> None:
        event = delivered.event
        title = str(event.get("title", event.event_type))
        link = str(event.get("link", ""))
        item = SidebarItem(
            event_id=event.event_id,
            subscription_id=delivered.subscription_id,
            title=title,
            link=link,
            delivered_at=delivered.delivered_at,
            topic=str(event.get("topic", "")),
        )
        self.sidebar.append(item)
        self.lifecycle.record_delivery(delivered.subscription_id)

    def unread_items(self) -> List[SidebarItem]:
        return [item for item in self.sidebar if item.state is SidebarItemState.UNREAD]

    # -- user reactions (implicit feedback) ------------------------------------------

    def click_item(self, event_id: str, now: float) -> Optional[SidebarItem]:
        """The user clicked a sidebar item to view it: positive feedback."""
        item = self._find_unread(event_id)
        if item is None:
            return None
        item.state = SidebarItemState.CLICKED
        self.feedback.record_signal(
            self.user_id, item.subscription_id, FeedbackKind.CLICKED, now, event_id
        )
        return item

    def delete_item(self, event_id: str, now: float) -> Optional[SidebarItem]:
        """The user deleted the item without reading it: negative feedback."""
        item = self._find_unread(event_id)
        if item is None:
            return None
        item.state = SidebarItemState.DELETED
        self.feedback.record_signal(
            self.user_id, item.subscription_id, FeedbackKind.DELETED, now, event_id
        )
        return item

    def expire_items(self, now: float) -> List[SidebarItem]:
        """Expire unread items older than the configured sidebar expiry."""
        expired = []
        for item in self.sidebar:
            if (
                item.state is SidebarItemState.UNREAD
                and now - item.delivered_at >= self.config.sidebar_expiry
            ):
                item.state = SidebarItemState.EXPIRED
                self.feedback.record_signal(
                    self.user_id,
                    item.subscription_id,
                    FeedbackKind.EXPIRED,
                    now,
                    item.event_id,
                )
                expired.append(item)
        return expired

    def _find_unread(self, event_id: str) -> Optional[SidebarItem]:
        for item in self.sidebar:
            if item.event_id == event_id and item.state is SidebarItemState.UNREAD:
                return item
        return None

    # -- statistics -----------------------------------------------------------------

    def sidebar_counts(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in SidebarItemState}
        for item in self.sidebar:
            counts[item.state.value] += 1
        return counts
