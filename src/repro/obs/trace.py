"""Event tracing: spans, trace contexts and the sampling tracer.

The routed cluster's metrics (:mod:`repro.sim.metrics`) are aggregate —
they say *how many* events were delivered, dropped or delayed, never
*which* event went *where*.  This module adds per-event causality: a
:class:`Tracer` samples publications at their head (1-in-N, plus
always-sample while an anomaly is active) and threads a
:class:`TraceContext` through the cluster's message plane, emitting one
:class:`Span` per pipeline stage:

``publish``
    the event enters the system at its ingress broker (the trace root);
``queue``
    mailbox wait, from enqueue to service start (attrs: batch size,
    hop count, broker incarnation);
``match``
    the service cycle that matched the event (attrs: batch size, match
    count, shard count, incarnation);
``deliver``
    local deliveries produced by a match (attrs: delivery count,
    subscription ids, truncated past a cap);
``forward``
    one per outgoing overlay link *per event*, spanning the link transfer
    time (attrs: ``link="a->b"``, latency, hop count).  When the cluster
    coalesces several events bound for the same next hop into one
    ``event.forward_batch`` message, each member event still gets its own
    forward span — carrying ``coalesced=N`` and the shared batch transfer
    time — and its own forked child context, so per-event causality (and
    loss attribution) is unchanged by batching;
``drop``
    a *terminal* span explaining why the event (or one of its forwarded
    copies) died.  ``status="dropped"`` marks a definite loss (crashed
    in-service batch, dropped mailbox, publish to a dead broker, network
    drop); ``status="at_risk"`` marks a *potential* loss recorded when an
    event is served while the overlay is degraded (routes pruned by
    failover), where pruned routing state silently skips deliveries that
    a healthy fabric would have made.

Spans carry sim-clock timestamps, so durations are simulated time, and
parent ids, so each trace is a tree rooted at its publish span.  The
loss-attribution oracle (:mod:`repro.obs.loss`) consumes these spans;
exporters live in :mod:`repro.obs.export`.

Sampling is head-based and cheap: the decision is made once per publish
(one counter increment + modulo), unsampled events carry ``trace=None``
through the whole pipeline (one attribute check per stage), and a cluster
constructed without a tracer pays a single ``is not None`` test per
publish.  ``sample_on_anomaly`` makes the tracer sticky-sample every
publication from the moment a fault is observed (crash, link failure,
suspicion, network drop) until the cluster reports itself healthy again,
so degraded windows are always covered even at 1-in-1000 sampling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "TraceContext", "Tracer"]

# Definite loss: the event (or a forwarded copy) is unrecoverably gone.
STATUS_OK = "ok"
STATUS_DROPPED = "dropped"
# Potential loss: served while routing was degraded; deliveries beyond a
# pruned route are silently skipped, so the event *may* have lost some.
STATUS_AT_RISK = "at_risk"


@dataclass
class Span:
    """One traced pipeline stage of one event."""

    span_id: int
    trace_id: int
    event_id: str
    name: str
    start: float
    end: float
    broker: Optional[str] = None
    parent_id: Optional[int] = None
    status: str = STATUS_OK
    cause: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_terminal_drop(self) -> bool:
        return self.name == "drop" and self.status == STATUS_DROPPED

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (the span-dump exporter's row format)."""
        row: Dict[str, object] = {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "event_id": self.event_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "broker": self.broker,
            "parent_id": self.parent_id,
            "status": self.status,
        }
        if self.cause is not None:
            row["cause"] = self.cause
        if self.attrs:
            row["attrs"] = dict(self.attrs)
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cause = f", cause={self.cause!r}" if self.cause else ""
        return (
            f"Span({self.name!r}, id={self.span_id}, broker={self.broker!r}, "
            f"[{self.start:.4f}..{self.end:.4f}], status={self.status!r}{cause})"
        )


class TraceContext:
    """The sampled-trace handle threaded through the message plane.

    Carries the trace id, the traced event's id and the span the *next*
    stage should parent itself on.  Each forwarded copy of an event gets
    its own context (forked under its forward span) so the span tree
    mirrors the overlay fan-out.
    """

    __slots__ = ("trace_id", "event_id", "parent_id")

    def __init__(self, trace_id: int, event_id: str, parent_id: Optional[int]) -> None:
        self.trace_id = trace_id
        self.event_id = event_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace={self.trace_id}, event={self.event_id!r}, "
            f"parent={self.parent_id})"
        )


class Tracer:
    """Head-sampling span collector for the routed cluster.

    ``sample_every=N`` samples one publication in N (the first, then every
    Nth).  While an anomaly is active (``note_anomaly`` /
    ``clear_anomaly``, driven by the cluster's fault hooks) every
    publication is sampled regardless, so loss windows are always traced.
    ``max_spans`` bounds memory on long runs: past the cap only ``drop``
    spans are still recorded (attribution must never go blind) and
    :attr:`truncated` is set.
    """

    def __init__(
        self,
        sample_every: int = 1,
        sample_on_anomaly: bool = True,
        max_spans: Optional[int] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        if max_spans is not None and max_spans < 1:
            raise ValueError("max_spans must be positive when given")
        self.sample_every = sample_every
        self.sample_on_anomaly = sample_on_anomaly
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self._by_event: Dict[str, List[Span]] = {}
        self._next_span = itertools.count(1)
        self._next_trace = itertools.count(1)
        self._published = 0
        self.sampled_traces = 0
        self.truncated = False
        self.anomaly_active = False
        self.anomalies: List[Tuple[float, str]] = []

    # -- sampling ----------------------------------------------------------

    def should_sample(self) -> bool:
        """The head-based decision for the publication just counted."""
        if self.sample_on_anomaly and self.anomaly_active:
            return True
        return (self._published - 1) % self.sample_every == 0

    def begin_trace(self, event, broker: str, now: float) -> Optional[TraceContext]:
        """Apply head sampling to one publication; on a hit, open the
        trace with its root ``publish`` span and return the context."""
        self._published += 1
        if not self.should_sample():
            return None
        self.sampled_traces += 1
        trace = TraceContext(next(self._next_trace), event.event_id, None)
        trace.parent_id = self.record_span(
            "publish", trace, start=now, end=now, broker=broker
        )
        return trace

    def fork(self, trace: TraceContext, parent_id: int) -> TraceContext:
        """A child context for a forwarded copy of the traced event."""
        return TraceContext(trace.trace_id, trace.event_id, parent_id)

    # -- span recording ----------------------------------------------------

    def record_span(
        self,
        name: str,
        trace: TraceContext,
        start: float,
        end: float,
        broker: Optional[str] = None,
        parent_id: Optional[int] = None,
        status: str = STATUS_OK,
        cause: Optional[str] = None,
        **attrs: object,
    ) -> int:
        """Append one finished span to the trace; returns its span id."""
        span_id = next(self._next_span)
        if (
            self.max_spans is not None
            and len(self.spans) >= self.max_spans
            and name != "drop"
        ):
            self.truncated = True
            return span_id
        span = Span(
            span_id=span_id,
            trace_id=trace.trace_id,
            event_id=trace.event_id,
            name=name,
            start=start,
            end=end,
            broker=broker,
            parent_id=parent_id if parent_id is not None else trace.parent_id,
            status=status,
            cause=cause,
            attrs=attrs,
        )
        self.spans.append(span)
        self._by_event.setdefault(trace.event_id, []).append(span)
        return span_id

    def record_drop(
        self,
        trace: TraceContext,
        now: float,
        broker: Optional[str],
        cause: str,
        definite: bool = True,
        **attrs: object,
    ) -> int:
        """Record a terminal (or, with ``definite=False``, an at-risk)
        drop span explaining where and why a traced event died."""
        return self.record_span(
            "drop",
            trace,
            start=now,
            end=now,
            broker=broker,
            status=STATUS_DROPPED if definite else STATUS_AT_RISK,
            cause=cause,
            **attrs,
        )

    # -- anomaly window ----------------------------------------------------

    def note_anomaly(self, kind: str, now: float = 0.0) -> None:
        """Enter (or extend) the always-sample window; ``kind`` is kept
        for diagnostics (bounded to the most recent 1000)."""
        self.anomaly_active = True
        self.anomalies.append((now, kind))
        if len(self.anomalies) > 1000:
            del self.anomalies[:-1000]

    def clear_anomaly(self) -> None:
        self.anomaly_active = False

    # -- reading -----------------------------------------------------------

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def published(self) -> int:
        """Publications the sampling decision has seen."""
        return self._published

    def spans_for_event(self, event_id: str) -> List[Span]:
        return list(self._by_event.get(event_id, ()))

    def traced_event_ids(self) -> List[str]:
        return list(self._by_event)

    def drop_spans(self, definite_only: bool = False) -> List[Span]:
        return [
            span
            for span in self.spans
            if span.name == "drop"
            and (not definite_only or span.status == STATUS_DROPPED)
        ]

    def stats(self) -> Dict[str, object]:
        """Plain-dict tracer accounting for exporters and reports."""
        drops = self.drop_spans()
        return {
            "published": self._published,
            "sampled_traces": self.sampled_traces,
            "sample_every": self.sample_every,
            "spans": len(self.spans),
            "drop_spans": len(drops),
            "definite_drops": sum(1 for s in drops if s.status == STATUS_DROPPED),
            "anomalies": len(self.anomalies),
            "truncated": self.truncated,
        }
