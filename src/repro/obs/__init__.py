"""Observability: event tracing, loss attribution, audit log, exporters.

``repro.obs`` is the per-event lens on the routed cluster that the
aggregate counters in :mod:`repro.sim.metrics` cannot provide:

* :mod:`repro.obs.trace` — sampling :class:`Tracer`, :class:`Span`,
  :class:`TraceContext`; threads through ``BrokerCluster`` publish →
  queue → match → forward → deliver;
* :mod:`repro.obs.loss` — :func:`attribute_losses`, cross-checking drop
  spans against the C2 delivery oracle;
* :mod:`repro.obs.audit` — :class:`RouteAuditLog` recording why each
  :class:`~repro.cluster.routing.RoutingFabric` route entry exists;
* :mod:`repro.obs.export` — JSON span dumps, Prometheus text rendering,
  per-broker timing breakdown tables.
"""

from repro.obs.audit import AuditRecord, RouteAuditLog
from repro.obs.export import (
    broker_timing_breakdown,
    dump_spans,
    format_span_tree,
    render_prometheus,
    spans_payload,
)
from repro.obs.loss import LossReport, LossVerdict, attribute_losses
from repro.obs.trace import Span, TraceContext, Tracer

__all__ = [
    "AuditRecord",
    "LossReport",
    "LossVerdict",
    "RouteAuditLog",
    "Span",
    "TraceContext",
    "Tracer",
    "attribute_losses",
    "broker_timing_breakdown",
    "dump_spans",
    "format_span_tree",
    "render_prometheus",
    "spans_payload",
]
