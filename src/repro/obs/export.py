"""Exporters: span dumps, Prometheus text, per-broker timing tables.

Three renderings of the observability state, all fed from plain dicts so
they stay decoupled from the collectors:

* :func:`dump_spans` / :func:`spans_payload` — the tracer's span record
  as JSON (the CI trace-oracle job uploads this as a build artifact);
* :func:`render_prometheus` — a :class:`~repro.sim.metrics.MetricsRegistry`
  snapshot in the Prometheus text exposition format (counters →
  ``counter``, gauges → ``gauge``, histograms → ``summary`` with
  p50/p95/p99 quantile lines), for scraping a future live broker server;
* :func:`broker_timing_breakdown` — the per-broker timing/throughput
  table the C1/C2 experiment reports embed (service cycles, busy time,
  utilization, queue depth, crash downtime).

:func:`format_span_tree` pretty-prints one event's spans as an indented
tree (used by ``examples/traced_publish.py``).
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

from repro.sim.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.broker_cluster import BrokerCluster
    from repro.obs.trace import Span, Tracer

__all__ = [
    "broker_timing_breakdown",
    "dump_spans",
    "format_span_tree",
    "render_prometheus",
    "spans_payload",
]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    return prefix + _PROM_NAME.sub("_", name)


def render_prometheus(
    metrics: Union[MetricsRegistry, Dict[str, Dict[str, object]]],
    prefix: str = "repro_",
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Accepts a registry or an already-taken ``registry.snapshot()`` dict.
    Metric names are sanitized (``.`` and other invalid characters become
    ``_``) and prefixed; histograms render as summaries with quantile
    lines plus ``_sum``/``_count``.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, aggregate in snapshot.get("histograms", {}).items():
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} summary")
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            lines.append(f'{prom}{{quantile="{q}"}} {aggregate.get(key, 0.0)}')
        lines.append(f"{prom}_sum {aggregate.get('total', 0.0)}")
        lines.append(f"{prom}_count {int(aggregate.get('count', 0))}")
    return "\n".join(lines) + "\n"


def spans_payload(
    tracer: "Tracer", extra: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The JSON-ready span-dump document: tracer stats + every span."""
    payload: Dict[str, object] = {
        "stats": tracer.stats(),
        "spans": [span.as_dict() for span in tracer.spans],
    }
    if extra:
        payload.update(extra)
    return payload


def dump_spans(
    tracer: "Tracer", path: str, extra: Optional[Dict[str, object]] = None
) -> None:
    """Write the span dump to ``path`` (compact JSON; dumps can be large)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spans_payload(tracer, extra), handle, separators=(",", ":"))
        handle.write("\n")


def format_span_tree(spans: Sequence["Span"]) -> str:
    """Indented tree rendering of one trace's spans (parent-id order)."""
    children: Dict[Optional[int], List["Span"]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)

    lines: List[str] = []

    def render(span: "Span", depth: int) -> None:
        duration_ms = span.duration * 1000.0
        detail = f"@{span.broker}" if span.broker else ""
        bits = [f"t={span.start:.4f}s"]
        if duration_ms > 0:
            bits.append(f"dur={duration_ms:.2f}ms")
        if span.status != "ok":
            bits.append(span.status.upper())
        if span.cause:
            bits.append(f"cause={span.cause}")
        for key in ("link", "batch_size", "matches", "deliveries", "hops"):
            if key in span.attrs:
                bits.append(f"{key}={span.attrs[key]}")
        lines.append(f"{'  ' * depth}{span.name} {detail} [{', '.join(bits)}]")
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            render(child, depth + 1)

    for root in sorted(children.get(None, ()), key=lambda s: (s.start, s.span_id)):
        render(root, 0)
    return "\n".join(lines)


def broker_timing_breakdown(cluster: "BrokerCluster") -> List[Dict[str, object]]:
    """Per-broker timing/throughput rows for experiment report tables."""
    now = cluster.sim.now
    rows: List[Dict[str, object]] = []
    for name, broker in sorted(cluster.brokers.items()):
        stats = broker.stats
        cycles = stats.service_cycles
        rows.append(
            {
                "broker": name,
                "enqueued": stats.events_enqueued,
                "processed": stats.events_processed,
                "deliveries": stats.deliveries,
                "fwd_out": stats.events_forwarded,
                "fwd_in": stats.forwards_received,
                "cycles": cycles,
                "mean_batch": round(stats.events_processed / cycles, 2) if cycles else 0.0,
                "busy_s": round(stats.busy_time, 4),
                "util": round(stats.busy_time / now, 3) if now > 0 else 0.0,
                "queued": broker.queue_depth,
                "crashes": stats.crashes,
                "lost": stats.events_lost,
                "down_s": round(stats.downtime, 4),
                "shards": getattr(broker.engine, "num_shards", 1),
            }
        )
    return rows
