"""Control-plane audit log: why does each route entry exist?

The incremental :class:`~repro.cluster.routing.RoutingFabric` mutates
routing state through several distinct doors — fresh propagation,
covering pruning, victim readmission after a coverer retracts, ingress
merging, boot-time eviction when a link appears.  After a long churn the
*presence* of an entry tells you nothing about *which* door it came
through; debugging a stale or missing route means replaying the whole
history by hand.

:class:`RouteAuditLog` records one :class:`AuditRecord` per control-plane
decision, in decision order.  Record format (also documented in
PERFORMANCE.md):

=================== ===========================================================
field               meaning
=================== ===========================================================
``index``           monotone per-log decision sequence number
``action``          one of the actions below
``subscription_id`` the subscription the decision is about
``node``            broker where the decision applies
``via``             neighbour the route entry points at (``node -> via``),
                    ``None`` for node-scoped actions
``blocker``         the *other* subscription id that caused the decision:
                    the coverer for ``covered-by`` / ``merged-ingress`` /
                    ``evicted``, ``None`` otherwise
``seq``             the fabric's propagation sequence number, when the
                    decision created a route entry
=================== ===========================================================

Actions:

``issued``
    a route entry was created by normal advertisement propagation;
``covered-by``
    a would-be entry was pruned because ``blocker`` already covers it on
    that edge;
``readmitted-victim``
    a previously pruned entry was (re)issued because its blocker went
    away (retraction or topology change);
``merged-ingress``
    with ``merge_ingress``, a new subscription was absorbed at its home
    broker because ``blocker`` already covers it there (no propagation at
    all);
``evicted``
    a boot-time covering sweep removed an existing entry in favour of
    ``blocker``;
``retracted``
    the entry was removed because its subscription was unsubscribed or
    its edge vanished.

The log is append-only and indexed by subscription id; it is attached to
a fabric via the ``audit=`` constructor argument (or
``BrokerCluster(route_audit=True)``) and costs one ``is not None`` test
per decision when absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["AuditRecord", "RouteAuditLog"]

ACTIONS = (
    "issued",
    "covered-by",
    "readmitted-victim",
    "merged-ingress",
    "evicted",
    "retracted",
)


@dataclass(frozen=True)
class AuditRecord:
    """One control-plane decision (see module docstring for the format)."""

    index: int
    action: str
    subscription_id: str
    node: Optional[str] = None
    via: Optional[str] = None
    blocker: Optional[str] = None
    seq: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "index": self.index,
            "action": self.action,
            "subscription_id": self.subscription_id,
        }
        for key in ("node", "via", "blocker", "seq"):
            value = getattr(self, key)
            if value is not None:
                row[key] = value
        return row

    def describe(self) -> str:
        edge = ""
        if self.node is not None:
            edge = f" at {self.node}"
            if self.via is not None:
                edge = f" at {self.node}->{self.via}"
        blocker = f" (blocker {self.blocker})" if self.blocker is not None else ""
        return f"#{self.index} {self.subscription_id}: {self.action}{edge}{blocker}"


class RouteAuditLog:
    """Append-only log of routing-fabric decisions, indexed by subscription."""

    def __init__(self) -> None:
        self.records: List[AuditRecord] = []
        self._by_subscription: Dict[str, List[AuditRecord]] = {}

    def record(
        self,
        action: str,
        subscription_id: str,
        node: Optional[str] = None,
        via: Optional[str] = None,
        blocker: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> AuditRecord:
        if action not in ACTIONS:
            raise ValueError(f"unknown audit action {action!r}")
        entry = AuditRecord(
            index=len(self.records),
            action=action,
            subscription_id=subscription_id,
            node=node,
            via=via,
            blocker=blocker,
            seq=seq,
        )
        self.records.append(entry)
        self._by_subscription.setdefault(subscription_id, []).append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[AuditRecord]:
        return iter(self.records)

    def for_subscription(self, subscription_id: str) -> List[AuditRecord]:
        """All decisions about one subscription, in decision order."""
        return list(self._by_subscription.get(subscription_id, ()))

    def why(
        self, subscription_id: str, node: str, via: Optional[str] = None
    ) -> Optional[AuditRecord]:
        """The most recent decision about ``subscription_id`` at ``node``
        (optionally narrowed to the ``node -> via`` edge) — i.e. why the
        entry there exists, or why it doesn't."""
        for entry in reversed(self._by_subscription.get(subscription_id, ())):
            if entry.node != node:
                continue
            if via is not None and entry.via is not None and entry.via != via:
                continue
            return entry
        return None

    def tally(self) -> Dict[str, int]:
        """Decision counts by action, for reports."""
        counts: Dict[str, int] = {}
        for entry in self.records:
            counts[entry.action] = counts.get(entry.action, 0) + 1
        return counts

    def as_dicts(self) -> List[Dict[str, object]]:
        return [entry.as_dict() for entry in self.records]
