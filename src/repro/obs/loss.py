"""Loss attribution: explain every undelivered traced event.

The C2 churn experiment already *detects* loss — a single-engine oracle
computes the expected delivery multiset and the run is diffed against it
(:func:`repro.experiments.cluster_churn` ``_loss_and_duplication``).
This module goes one step further and *explains* it: for every traced
event that lost deliveries, the span record must contain a drop span
naming the cause.

Causes come in two strengths (see :mod:`repro.obs.trace`):

* **definite** (``status="dropped"``) — the event provably died there:
  published to a crashed broker, lost with an in-service batch, shed by a
  drop-policy mailbox, or network-dropped on a downed link / toward an
  unregistered destination;
* **potential** (``status="at_risk"``) — the event was served while the
  overlay was degraded.  Failover prunes routes, and an event crossing a
  pruned fabric simply stops being forwarded — there is no local "drop"
  anywhere near the cut.  The cluster therefore stamps an at-risk marker
  on every traced serve during a degraded window; if the oracle then
  finds losses and no definite cause, the degraded routing state is the
  attribution.

:func:`attribute_losses` cross-checks the trace record against the
delivery oracle and returns a :class:`LossReport` whose
``fully_attributed`` property is the CI gate: with full sampling, every
lost event must carry an explanation, and every fully delivered event
must show a complete publish → deliver span chain.

Batched publishing and coalesced forwarding change nothing here: a
``publish_many`` batch traces one root per member event, a dropped
``event.forward_batch`` message yields one definite drop span per member,
and a crashed in-service batch is flattened to its member events before
drop spans are recorded — attribution stays per-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.obs.trace import STATUS_AT_RISK, STATUS_DROPPED, Tracer

__all__ = ["LossVerdict", "LossReport", "attribute_losses"]


@dataclass
class LossVerdict:
    """The attribution outcome for one event that lost deliveries."""

    event_id: str
    expected: int
    delivered: int
    causes: Tuple[str, ...]
    definite: bool
    attributed: bool

    @property
    def lost(self) -> int:
        return self.expected - self.delivered

    def describe(self) -> str:
        if not self.attributed:
            why = "UNATTRIBUTED"
        else:
            strength = "definite" if self.definite else "potential"
            why = f"{strength}: {', '.join(self.causes)}"
        return (
            f"{self.event_id}: lost {self.lost}/{self.expected} "
            f"deliveries — {why}"
        )


@dataclass
class LossReport:
    """Trace-vs-oracle cross-check over one run."""

    verdicts: List[LossVerdict] = field(default_factory=list)
    unattributed: List[str] = field(default_factory=list)
    untraced_losses: List[str] = field(default_factory=list)
    chain_gaps: List[str] = field(default_factory=list)
    events_checked: int = 0
    events_lost: int = 0
    deliveries_expected: int = 0
    deliveries_lost: int = 0

    @property
    def fully_attributed(self) -> bool:
        """True when every lost event is traced and explained and every
        delivered trace has a complete span chain (the CI gate)."""
        return not (self.unattributed or self.untraced_losses or self.chain_gaps)

    def cause_tally(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for verdict in self.verdicts:
            for cause in verdict.causes:
                counts[cause] = counts.get(cause, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"loss attribution: {self.events_lost}/{self.events_checked} events "
            f"lost deliveries ({self.deliveries_lost}/{self.deliveries_expected} "
            f"deliveries)"
        ]
        tally = self.cause_tally()
        if tally:
            causes = ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
            lines.append(f"  causes: {causes}")
        if self.fully_attributed:
            lines.append("  every loss attributed; all delivery chains complete")
        else:
            if self.unattributed:
                lines.append(f"  UNATTRIBUTED: {sorted(self.unattributed)}")
            if self.untraced_losses:
                lines.append(f"  untraced losses: {sorted(self.untraced_losses)}")
            if self.chain_gaps:
                lines.append(f"  incomplete span chains: {sorted(self.chain_gaps)}")
        return "\n".join(lines)


def attribute_losses(
    tracer: Tracer,
    expected: Mapping[str, Sequence[str]],
    delivered: Mapping[str, Sequence[str]],
) -> LossReport:
    """Cross-check the trace record against the delivery oracle.

    ``expected`` maps event id → the oracle's subscription-id multiset;
    ``delivered`` maps event id → the subscription ids actually served.
    Events the tracer never sampled are only reported when they lost
    deliveries (``untraced_losses``) — with ``sample_every=1`` that list
    is empty by construction, which is what the CI trace-oracle job runs.
    """
    report = LossReport()
    for event_id in sorted(expected):
        wanted = expected[event_id]
        got = list(delivered.get(event_id, ()))
        report.events_checked += 1
        report.deliveries_expected += len(wanted)

        remaining: Dict[str, int] = {}
        for sub_id in got:
            remaining[sub_id] = remaining.get(sub_id, 0) + 1
        missing = 0
        for sub_id in wanted:
            if remaining.get(sub_id, 0) > 0:
                remaining[sub_id] -= 1
            else:
                missing += 1

        spans = tracer.spans_for_event(event_id)
        if missing:
            report.events_lost += 1
            report.deliveries_lost += missing
            if not spans:
                report.untraced_losses.append(event_id)
                continue
            drops = [s for s in spans if s.name == "drop"]
            definite = sorted(
                {s.cause for s in drops if s.status == STATUS_DROPPED and s.cause}
            )
            potential = sorted(
                {s.cause for s in drops if s.status == STATUS_AT_RISK and s.cause}
            )
            if definite:
                causes, is_definite, attributed = tuple(definite), True, True
            elif potential:
                causes, is_definite, attributed = tuple(potential), False, True
            else:
                causes, is_definite, attributed = (), False, False
                report.unattributed.append(event_id)
            report.verdicts.append(
                LossVerdict(
                    event_id=event_id,
                    expected=len(wanted),
                    delivered=len(wanted) - missing,
                    causes=causes,
                    definite=is_definite,
                    attributed=attributed,
                )
            )
        elif spans:
            # Fully delivered *and* traced: the chain must be complete —
            # a publish root, and at least one deliver span whenever the
            # oracle expected deliveries at all.
            names = {s.name for s in spans}
            if "publish" not in names or (wanted and "deliver" not in names):
                report.chain_gaps.append(event_id)
    return report
