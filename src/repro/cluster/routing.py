"""Transport-agnostic content-based routing core (the message plane).

Routing in this system has two halves that must never diverge:

* the *control plane* — subscriptions issued at a broker propagate through
  the overlay so every broker records, per neighbour, which subscriptions
  are reachable via that neighbour (pruned by covering relations);
* the *data plane decision* — given an event at a broker, which neighbours
  lead toward matching subscriptions.

Before this module existed both halves lived inside the synchronous
:class:`~repro.pubsub.router.BrokerOverlay`, so the sim-clock
:class:`~repro.cluster.broker_cluster.BrokerCluster` could not route
between its brokers at all.  :class:`RoutingFabric` extracts topology
management, subscription propagation, unsubscription repair and the
forwarding decision into one component that any transport can drive: the
overlay walks the fabric's next-hop answers synchronously, the cluster
turns them into forwarding messages through broker mailboxes with
simulated link latency.

The fabric operates on :class:`~repro.pubsub.broker.Broker` nodes (or
anything with the same routing surface: ``subscribe_local`` /
``unsubscribe_local`` / ``learn_remote`` / ``forget_remote`` /
``remote_engines`` / ``interested_neighbours`` / ``stats``).

Incremental control plane
-------------------------

Every routing decision reduces to one canonical per-edge rule.  For each
*directed* table entry position — a ``(node, via-neighbour)`` pair — the
candidates are the live subscriptions whose home lies beyond that
neighbour, and the table holds exactly the greedy covering filter of the
candidates in subscription *issue order*: a candidate is selected unless
an earlier-issued selected candidate covers it (Siena semantics: the
covering route already forwards every event the covered one matches).
Because the rule is per-edge and order-canonical, the whole fabric state
is a pure function of (topology, issue-ordered live subscriptions) — the
property the convergence oracle (:meth:`rebuilt_snapshot`) checks.

The fabric maintains that rule *incrementally* instead of rebuilding:

* a **reverse route index** (subscription id → selected table entries)
  makes retraction touch only the routes that exist;
* a **pruned-by graph** records, per edge, which selected cover
  suppressed which candidate — retraction re-admits only actual victims,
  found by :class:`~repro.pubsub.subscriptions.CoveringIndex` lookups
  rather than ``covers()``-scanning every live subscription;
* re-admitted candidates evict later-issued entries they cover (whose own
  victims transfer by covering transitivity), so any mutation order
  converges to the same canonical tables — link restoration merges two
  components without the full component rebuild PR 4 paid;
* :meth:`disconnect`/:meth:`remove_node` purge only state that crossed
  the cut and repair only its victims (**delta repair**), with
  :meth:`reroute_component` retained as the from-scratch verification
  path (set :attr:`verify_repairs` to cross-check every mutation).

Covering-prune repair
---------------------

Propagation prunes a subscription's route at a broker when an
already-known route via the same neighbour *covers* it.  That makes
removal subtle: retracting a subscription must *re-advertise* every
remaining subscription it covered, because their routes may exist nowhere
upstream — the seed overlay skipped this and silently stopped forwarding
events to covered subscriptions once their cover left (see
``tests/pubsub/test_routing.py``
``test_unsubscribe_restores_covered_routes``).  Re-issuing a subscription
id with a changed definition retracts the old definition the same way
before propagating the new one, so stale routes cannot linger either.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.audit import RouteAuditLog
from repro.pubsub.broker import Broker
from repro.pubsub.events import Event
from repro.pubsub.subscriptions import CoveringIndex, Subscription
from repro.sim.metrics import MetricsRegistry

# A directed routing-table position: (node name, via-neighbour name).
RouteEntry = Tuple[str, str]

#: Sentinel home-table entry for ids that are not (or no longer) homed.
_NOT_HOMED: Tuple[None, None] = (None, None)


@dataclass
class SubscribeOutcome:
    """Control-plane accounting for one subscription propagation."""

    subscription_id: str
    home_broker: str
    hops: int = 0
    pruned: int = 0
    replaced: bool = False
    # True when ingress merging absorbed the subscription: it is
    # registered locally but not advertised into the fabric because a
    # live advertised same-subscriber subscription at the same home
    # already covers it.
    merged: bool = False


class _EdgeTable:
    """Control-plane bookkeeping for one directed table position.

    ``covers`` indexes the *selected* subscriptions (the ones actually in
    the node's per-neighbour matching engine), keyed by issue sequence;
    the pruned-by graph links every suppressed candidate to the selected
    cover that blocks it, in both directions.
    """

    __slots__ = ("covers", "blocker_of", "victims_of")

    def __init__(self) -> None:
        self.covers = CoveringIndex()
        self.blocker_of: Dict[str, str] = {}
        self.victims_of: Dict[str, Set[str]] = {}


class RoutingFabric:
    """Topology + routing state shared by every broker transport.

    The fabric owns the overlay graph (kept acyclic unless constructed
    with ``allow_cycles``, the redundant-mesh mode), the client→home
    mapping, and the id→home mapping of live subscriptions; per-broker
    routing tables live on the node objects themselves so the matching
    fast paths (``interested_neighbours`` → ``matches_any``) stay where
    the engines are.  With ``verify_repairs`` every mutation cross-checks
    the incremental result against a from-scratch rebuild (the CI churn
    oracle) and raises ``AssertionError`` on divergence.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        verify_repairs: bool = False,
        merge_ingress: bool = False,
        audit: Optional[RouteAuditLog] = None,
        allow_cycles: bool = False,
    ) -> None:
        self.nodes: Dict[str, object] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Redundant-mesh mode (set at construction).  With
        # ``allow_cycles`` the overlay may hold cycles: the per-edge
        # candidate rule generalizes to "the home is reachable from the
        # via-neighbour with the node itself removed" (on a forest that
        # reduces exactly to the acyclic BFS walk), every topology change
        # runs a diff-based repair over the live subscriptions, and the
        # data plane relies on per-event dedup at the transport to
        # suppress the duplicate forwards redundant paths produce.
        self.allow_cycles = allow_cycles
        # Mesh candidate-edge cache: home -> directed table positions,
        # valid for one topology version.
        self._topology_version = 0
        self._mesh_walk_version = -1
        self._mesh_walk_cache: Dict[str, List[RouteEntry]] = {}
        # Control-plane audit log (repro.obs.audit): when attached, every
        # select/prune/readmit/merge decision is recorded with its blocker
        # id.  Costs one `is not None` per decision when absent.
        self.audit = audit
        self._edges: Dict[str, Set[str]] = {}
        self._client_home: Dict[str, str] = {}
        # subscription id -> (home broker, live definition); insertion
        # order is issue order (re-issues move to the end), matching the
        # ascending `_seq` numbers the per-edge covering filter uses.
        self._home_of: Dict[str, Tuple[str, Subscription]] = {}
        self._seq: Dict[str, int] = {}
        self._next_seq = 1
        # Reverse route index: subscription id -> selected table entries.
        self._routes: Dict[str, Set[RouteEntry]] = {}
        # Reverse prune index: subscription id -> entries where a cover
        # suppresses it (the blocker lives in that edge's table).
        self._pruned_at: Dict[str, Set[RouteEntry]] = {}
        self._tables: Dict[RouteEntry, _EdgeTable] = {}
        self.verify_repairs = verify_repairs
        # Covering-aware ingress merging (set at construction; do not
        # toggle on a live fabric).  A subscription covered by a live
        # *advertised* same-subscriber subscription at the same home is
        # registered locally but kept out of `_home_of`/`_seq`/routes —
        # the coverer's routes already bring every matching event to the
        # home broker.  Exact-signature duplicates are always merged (the
        # duplicate-advert no-op); the full covering merge is opt-in.
        self.merge_ingress = merge_ingress
        # merged id -> (home, definition, advertised coverer id).
        self._merged: Dict[str, Tuple[str, Subscription, str]] = {}
        # advertised coverer id -> merged ids riding on it, merge order.
        self._merged_children: Dict[str, List[str]] = {}
        # (home, subscriber, signature id) -> advertised ids; the O(1)
        # exact-duplicate probe.  At most one id per key: a second
        # arrival with the same key merges instead of advertising.
        self._twins: Dict[Tuple[str, str, int], List[str]] = {}
        # (home, subscriber) -> CoveringIndex over the advertised
        # subscriptions (maintained only with merge_ingress).
        self._ingress: Dict[Tuple[str, str], CoveringIndex] = {}
        # Data-plane route-set cache: (node, came_from, event signature)
        # -> next-hop list.  Every control-plane mutation bumps
        # `_route_version`; the cache is dropped lazily on the next
        # `next_hops` call that observes a stale version, so mutation
        # bursts pay one integer increment each, not a dict clear each.
        self._route_version = 0
        self._route_cache: Dict[Tuple, List[str]] = {}
        self._route_cache_version = -1
        self.route_cache_max = 8192

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str, node: object) -> None:
        if name in self.nodes:
            raise ValueError(f"broker {name!r} already exists")
        self.nodes[name] = node
        self._edges[name] = set()
        self._topology_version += 1

    def connect(self, first: str, second: str, propagate: bool = True) -> None:
        """Join two brokers with a bidirectional overlay link.

        The overlay must remain acyclic; connecting two brokers already
        joined by a path raises ``ValueError``.

        The edge-merge advertisement is canonical: each side's live
        subscriptions cross into the other side with issue-order-aware
        pruning (later-issued routes they cover are evicted), so the
        merged tables equal a fresh build with no rebuild pass.  With no
        live subscriptions at all — topologies are usually wired before
        anything subscribes — the component walk is skipped outright
        (counted in ``overlay.adverts_skipped``), and a join side homing
        no subscriptions skips its advertisement direction the same way.

        With ``propagate=False`` only the edge structure is added — for
        callers that canonicalize with :meth:`reroute_component`
        themselves (the retained verification path).
        """
        if first not in self.nodes or second not in self.nodes:
            raise KeyError("both brokers must exist before connecting them")
        if first == second:
            raise ValueError("cannot connect a broker to itself")
        if second in self._edges[first]:
            raise ValueError(f"{first!r} and {second!r} are already connected")
        if self.allow_cycles:
            self._connect_mesh(first, second, propagate)
            return
        if self.path_exists(first, second):
            raise ValueError("overlay must remain acyclic (path already exists)")
        # The components being joined, captured before the edge exists:
        # each side's live subscriptions must be advertised *into the
        # other side only* — brokers on a subscription's own side already
        # hold its routes, so re-walking them would just inflate hop
        # stats — and subscriptions homed in some *third* component
        # (possible mid-churn, with several links down at once) have no
        # path to either side and must not be advertised at all.
        first_side: Optional[Set[str]] = None
        second_side: Optional[Set[str]] = None
        if propagate and self._home_of:
            first_side = self._component(first)
            second_side = self._component(second)
        self._edges[first].add(second)
        self._edges[second].add(first)
        self._route_version += 1
        self._topology_version += 1
        self.nodes[first].add_neighbour(second)
        self.nodes[second].add_neighbour(first)
        if not propagate:
            return
        if first_side is None or second_side is None:
            self.metrics.counter("overlay.adverts_skipped").increment()
            return
        # Batch the edge merge: one BFS walk per advertisement direction
        # (the two directions touch disjoint table positions), with each
        # side's subscriptions fed through the covering filter in issue
        # order, instead of a full component walk per subscription.
        first_walks: List[Tuple[Subscription, SubscribeOutcome]] = []
        second_walks: List[Tuple[Subscription, SubscribeOutcome]] = []
        for home, subscription in list(self._home_of.values()):
            if home in first_side:
                first_walks.append(
                    (subscription, SubscribeOutcome(subscription.subscription_id, home))
                )
            elif home in second_side:
                second_walks.append(
                    (subscription, SubscribeOutcome(subscription.subscription_id, home))
                )
        for origin, walks, via in (
            (first, first_walks, (first, second)),
            (second, second_walks, (second, first)),
        ):
            if not walks:
                # One side of the join homes nothing: that whole
                # advertisement direction is skipped.
                self.metrics.counter("overlay.adverts_skipped").increment()
            else:
                self._propagate_many(origin, walks, via=via)
        self._check_canonical("connect")

    def _connect_mesh(self, first: str, second: str, propagate: bool) -> None:
        """Mesh-mode link addition: add the edge (cycles allowed) and
        diff-repair every live subscription's table positions.

        Adding an edge can only *add* candidate positions (reachability
        grows), so the repair places the new candidacies in issue order
        and leaves everything else untouched; on a still-acyclic overlay
        the result is identical to the acyclic edge-merge path.
        """
        self._edges[first].add(second)
        self._edges[second].add(first)
        self._route_version += 1
        self._topology_version += 1
        self.nodes[first].add_neighbour(second)
        self.nodes[second].add_neighbour(first)
        if not propagate:
            return
        if self._home_of:
            self._retopology_repair()
        else:
            self.metrics.counter("overlay.adverts_skipped").increment()
        self._check_canonical("connect")

    def _retopology_repair(self) -> None:
        """Mesh-mode delta repair after an edge change.

        For every live subscription, diff the candidate positions of its
        home (:meth:`_mesh_edges`) against the positions it currently
        occupies (selected routes plus recorded prunes): stale positions
        are deselected (collecting their prune victims) or cleared, new
        candidacies are placed in global issue order, and victim
        readmission flushes once per touched edge with a candidacy
        filter — ending in exactly the state a fresh build on the new
        topology would hold (``verify_repairs`` cross-checks each call).
        """
        candidate_sets: Dict[str, Set[RouteEntry]] = {}

        def candidates_of(home: str) -> Set[RouteEntry]:
            cached = candidate_sets.get(home)
            if cached is None:
                cached = candidate_sets[home] = set(self._mesh_edges(home))
            return cached

        pending: Dict[RouteEntry, Set[str]] = {}
        placements: List[Tuple[int, Subscription, List[RouteEntry]]] = []
        purged = 0
        for subscription_id, (home, subscription) in list(self._home_of.items()):
            candidate_set = candidates_of(home)
            routes = self._routes.get(subscription_id)
            if routes:
                for edge in [e for e in routes if e not in candidate_set]:
                    victims = self._deselect(
                        edge, subscription_id, collect_victims=True
                    )
                    purged += 1
                    if victims:
                        pending.setdefault(edge, set()).update(victims)
            prunes = self._pruned_at.get(subscription_id)
            if prunes:
                for edge in [e for e in prunes if e not in candidate_set]:
                    self._clear_prune(edge, subscription_id)
            occupied = set(self._routes.get(subscription_id, ()))
            occupied.update(self._pruned_at.get(subscription_id, ()))
            added = [e for e in self._mesh_edges(home) if e not in occupied]
            if added:
                placements.append((self._seq[subscription_id], subscription, added))
        placements.sort(key=lambda item: item[0])
        placed = 0
        for seq, subscription, added in placements:
            for edge in added:
                if self._place(edge, subscription, seq):
                    placed += 1
        for edge, victims in pending.items():
            self._readmit(
                edge,
                victims,
                candidate=lambda vid, e=edge: e
                in candidates_of(self._home_of[vid][0]),
            )
        if purged:
            self.metrics.counter("overlay.routes_purged").increment(purged)
        if placed:
            self.metrics.counter("overlay.subscription_hops").increment(placed)
        self.metrics.counter("overlay.route_repairs").increment()

    def disconnect(self, first: str, second: str) -> bool:
        """Remove the overlay link between two brokers and repair routes.

        The overlay splits into two components.  Repair is *delta*: using
        the reverse route index, only routes whose subscription is homed
        across the cut from the entry's node are purged, and only the
        recorded prune victims of those purged covers are re-admitted —
        ending in exactly the state a fabric freshly built on the
        shrunken topology would hold (cross-checked by the convergence
        oracle and, with :attr:`verify_repairs`, on every call).

        Returns ``False`` when no such link exists.
        """
        if second not in self._edges.get(first, ()):
            return False
        self._edges[first].discard(second)
        self._edges[second].discard(first)
        self._route_version += 1
        self._topology_version += 1
        self.nodes[first].remove_neighbour(second)
        self.nodes[second].remove_neighbour(first)
        self.metrics.counter("overlay.links_removed").increment()
        # The two directed positions on the removed link are gone outright.
        self._drop_edge_state((first, second))
        self._drop_edge_state((second, first))
        if self.allow_cycles:
            # Losing an edge can only *shrink* candidacy (reachability
            # falls); the mesh diff repair deselects exactly the positions
            # whose remaining paths died with the link — on a mesh the
            # redundant paths keep their routes and delivery survives.
            self._retopology_repair()
        else:
            self._delta_split_repair(second)
            self.metrics.counter("overlay.route_repairs").increment()
        self._check_canonical("disconnect")
        return True

    def _delta_split_repair(self, far_start: str) -> None:
        """Purge routing state that crossed a just-removed cut and
        re-admit the pruned victims of the purged covers."""
        far = self._component(far_start)
        purged = 0
        pending: Dict[RouteEntry, Set[str]] = {}
        for subscription_id, (home, _sub) in list(self._home_of.items()):
            home_far = home in far
            routes = self._routes.get(subscription_id)
            if routes:
                crossed = [e for e in routes if (e[0] in far) != home_far]
                for edge in crossed:
                    victims = self._deselect(edge, subscription_id, collect_victims=True)
                    purged += 1
                    if victims:
                        pending.setdefault(edge, set()).update(victims)
            prunes = self._pruned_at.get(subscription_id)
            if prunes:
                for edge in [e for e in prunes if (e[0] in far) != home_far]:
                    self._clear_prune(edge, subscription_id)
        if purged:
            self.metrics.counter("overlay.routes_purged").increment(purged)
        for edge, victims in pending.items():
            node_far = edge[0] in far
            self._readmit(
                edge,
                victims,
                candidate=lambda vid, nf=node_far: (
                    (self._home_of[vid][0] in far) == nf
                ),
            )

    def remove_node(self, name: str) -> None:
        """Permanently remove a broker: links, routes, and homed state.

        Subscriptions homed at the broker are retracted first (with
        covering repair for their prune victims), then each link is torn
        down with delta repair; use link removal alone to model a
        *temporary* outage where the homed subscription set should
        survive for later re-advertisement.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown broker {name!r}")
        # Merged subscriptions homed here go first, without promotion:
        # their home is being destroyed, so retracting their coverers
        # below must not re-advertise them.
        for subscription_id, (home, _sub, _coverer) in list(self._merged.items()):
            if home == name:
                self._unmerge(subscription_id)
        for subscription_id, (home, _sub) in list(self._home_of.items()):
            if home == name:
                self._retract(subscription_id, force=True)
        for client, home in list(self._client_home.items()):
            if home == name:
                del self._client_home[client]
        for neighbour in list(self._edges[name]):
            self.disconnect(name, neighbour)
        del self._edges[name]
        del self.nodes[name]

    def reroute_component(self, start: str) -> None:
        """Rebuild the routing tables of ``start``'s component from scratch.

        Clears every member's per-neighbour tables and re-propagates each
        live subscription homed inside the component in issue order.
        Delta repair makes this unnecessary on the hot paths; it remains
        the from-scratch *verification path* the incremental results are
        held equal to (and the fallback for callers that restructure
        topology behind the fabric's back).
        """
        component = self._component(start)
        for name in component:
            node = self.nodes[name]
            for neighbour in list(node.remote_engines):
                self._drop_edge_state((name, neighbour))
                node.clear_remote(neighbour)
        for home, subscription in list(self._home_of.values()):
            if home in component:
                self._propagate(home, subscription)
        self.metrics.counter("overlay.route_repairs").increment()

    def path_exists(self, start: str, goal: str) -> bool:
        return goal in self._component(start)

    def _component(self, start: str) -> Set[str]:
        """All brokers reachable from ``start`` over current edges."""
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour in self._edges[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def neighbours(self, broker_name: str) -> Set[str]:
        return set(self._edges[broker_name])

    def node_names(self) -> List[str]:
        return sorted(self.nodes)

    # -- client attachment ---------------------------------------------------

    def attach_client(self, client: str, broker_name: str) -> None:
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        self._client_home[client] = broker_name

    def home_broker(self, client: str) -> Optional[str]:
        return self._client_home.get(client)

    def require_home(self, client: str) -> str:
        home = self._client_home.get(client)
        if home is None:
            raise KeyError(f"client {client!r} is not attached to a broker")
        return home

    # -- control plane: subscription propagation -----------------------------

    def subscribe_at(self, broker_name: str, subscription: Subscription) -> SubscribeOutcome:
        """Place a subscription at ``broker_name`` and propagate its route.

        Re-issuing a live subscription id first retracts the old
        definition's routing state everywhere (with covering repair), so
        the new definition starts from a clean table at the *end* of the
        issue order.  A subscription absorbed by ingress merging (see
        :meth:`_ingest`) returns with ``merged=True`` and zero hops.
        """
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        outcome, advertise = self._ingest(broker_name, subscription)
        if advertise:
            self._propagate(broker_name, subscription, outcome=outcome)
        self._check_canonical("subscribe")
        return outcome

    def subscribe_many_at(
        self, broker_name: str, subscriptions: Iterable[Subscription]
    ) -> List[SubscribeOutcome]:
        """Place a batch of subscriptions at ``broker_name`` with one
        fabric walk.

        Equivalent to :meth:`subscribe_at` in a loop — identical tables,
        issue order, merge decisions and per-subscription outcomes — but
        the advertisement BFS over the overlay runs once for the whole
        batch, and batch members covered by an earlier batch member copy
        that member's per-edge fate instead of re-probing every edge
        table (see :meth:`_propagate_many`).
        """
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        batch = list(subscriptions)
        outcomes: List[SubscribeOutcome] = []
        advertise: List[Tuple[Subscription, SubscribeOutcome]] = []
        any_replaced = False
        for subscription in batch:
            outcome, needs_walk = self._ingest(
                broker_name, subscription, count=False, register_local=False
            )
            outcomes.append(outcome)
            any_replaced = any_replaced or outcome.replaced
            if needs_walk:
                advertise.append((subscription, outcome))
        if batch:
            self.metrics.counter("overlay.subscriptions").increment(len(batch))
        # A later batch entry reusing an id retracts (or merges away) the
        # earlier entry during its own ingest; only definitions still
        # registered under their id advertise.  Without this filter a
        # superseded entry would be walked with its successor's issue
        # number — or, if the successor merged, with none at all.  An
        # in-batch supersession implies some entry replaced a live id, so
        # batches without replacements (the common case) skip the scan.
        if advertise and any_replaced:
            home_of = self._home_of
            advertise = [
                (subscription, outcome)
                for subscription, outcome in advertise
                if home_of.get(subscription.subscription_id, _NOT_HOMED)[1]
                is subscription
            ]
        # Local registration runs once for the whole batch (the engine's
        # add_many path); merge decisions above depend only on fabric
        # state (_twins/_ingress), never on the local engine contents.
        node = self.nodes[broker_name]
        register_many = getattr(node, "subscribe_local_many", None)
        if register_many is not None:
            register_many(batch)
        else:  # pragma: no cover - non-Broker node objects
            for subscription in batch:
                node.subscribe_local(subscription)
        if advertise:
            self._propagate_many(broker_name, advertise)
        self._check_canonical("subscribe_many")
        return outcomes

    def subscribe(self, client: str, subscription: Subscription) -> SubscribeOutcome:
        """Place a subscription at the client's home broker."""
        return self.subscribe_at(self.require_home(client), subscription)

    def subscribe_many(
        self, client: str, subscriptions: Iterable[Subscription]
    ) -> List[SubscribeOutcome]:
        """Batch-place subscriptions at the client's home broker."""
        return self.subscribe_many_at(self.require_home(client), subscriptions)

    def _ingest(
        self,
        broker_name: str,
        subscription: Subscription,
        count: bool = True,
        register_local: bool = True,
    ) -> Tuple[SubscribeOutcome, bool]:
        """Local registration + merge decision for one subscription.

        Returns ``(outcome, needs_walk)``; when ``needs_walk`` the caller
        must advertise the subscription (its issue number is already
        assigned).  When ingress merging absorbs it instead, it is live
        in the home broker's local engine but holds no fabric state
        beyond the merge record — the advertised coverer's routes already
        deliver every event it matches.
        """
        subscription_id = subscription.subscription_id
        replaced = False
        if subscription_id in self._home_of:
            # Re-issue at the same home keeps the local engine entry so the
            # node's replace-on-readd path sees a known id and does not
            # double-count subscriptions_received; a home move is a real
            # removal at the old broker plus a fresh placement at the new.
            old_home = self._home_of[subscription_id][0]
            self._retract(
                subscription_id,
                keep_local=(old_home == broker_name),
                force=True,
            )
            replaced = True
        elif subscription_id in self._merged:
            old_home = self._merged[subscription_id][0]
            self._unmerge(subscription_id, keep_local=(old_home == broker_name))
            replaced = True
        if register_local:
            self.nodes[broker_name].subscribe_local(subscription)
        if count:
            self.metrics.counter("overlay.subscriptions").increment()
        outcome = SubscribeOutcome(
            subscription_id=subscription_id,
            home_broker=broker_name,
            replaced=replaced,
        )
        coverer_id = self._ingress_cover(broker_name, subscription)
        if coverer_id is not None:
            self._merged[subscription_id] = (broker_name, subscription, coverer_id)
            self._merged_children.setdefault(coverer_id, []).append(subscription_id)
            outcome.merged = True
            self.metrics.counter("overlay.adverts_skipped").increment()
            self.metrics.counter("overlay.subscriptions_merged").increment()
            if self.audit is not None:
                self.audit.record(
                    "merged-ingress",
                    subscription_id,
                    node=broker_name,
                    blocker=coverer_id,
                )
            return outcome, False
        self._home_of[subscription_id] = (broker_name, subscription)
        self._seq[subscription_id] = self._next_seq
        self._next_seq += 1
        self._register_ingress(broker_name, subscription)
        return outcome, True

    # -- ingress merging ------------------------------------------------------

    def _ingress_cover(self, home: str, subscription: Subscription) -> Optional[str]:
        """Id of the live advertised same-subscriber subscription at
        ``home`` that makes advertising ``subscription`` redundant.

        An exact-signature duplicate always merges (the duplicate-advert
        no-op); a strictly-covering match only with :attr:`merge_ingress`.
        Coverers are always advertised subscriptions — merged ones are
        themselves covered by an advertised one, so transitivity
        guarantees an advertised cover exists whenever any cover does,
        and merge chains cannot form.
        """
        signature_id = subscription.signature_id()
        if signature_id is not None:
            twins = self._twins.get((home, subscription.subscriber, signature_id))
            if twins:
                return twins[0]
        if self.merge_ingress:
            index = self._ingress.get((home, subscription.subscriber))
            if index is not None:
                cover = index.first_cover(
                    subscription, exclude=subscription.subscription_id
                )
                if cover is not None:
                    return cover.subscription_id
        return None

    def _register_ingress(self, home: str, subscription: Subscription) -> None:
        signature_id = subscription.signature_id()
        if signature_id is not None:
            self._twins.setdefault(
                (home, subscription.subscriber, signature_id), []
            ).append(subscription.subscription_id)
        if self.merge_ingress:
            self._ingress.setdefault(
                (home, subscription.subscriber), CoveringIndex()
            ).add(subscription)

    def _unregister_ingress(self, home: str, subscription: Subscription) -> None:
        signature_id = subscription.signature_id()
        if signature_id is not None:
            key = (home, subscription.subscriber, signature_id)
            ids = self._twins.get(key)
            if ids is not None:
                try:
                    ids.remove(subscription.subscription_id)
                except ValueError:
                    pass
                if not ids:
                    del self._twins[key]
        index = self._ingress.get((home, subscription.subscriber))
        if index is not None:
            index.discard(subscription.subscription_id)
            if not len(index):
                del self._ingress[(home, subscription.subscriber)]

    def _unmerge(self, subscription_id: str, keep_local: bool = False) -> None:
        """Drop a merge record (and, unless ``keep_local``, the local
        engine entry).  No routing state exists for a merged id."""
        home, _subscription, coverer_id = self._merged.pop(subscription_id)
        siblings = self._merged_children.get(coverer_id)
        if siblings is not None:
            try:
                siblings.remove(subscription_id)
            except ValueError:
                pass
            if not siblings:
                del self._merged_children[coverer_id]
        if not keep_local:
            self.nodes[home].unsubscribe_local(subscription_id)

    def _promote_children(self, coverer_id: str) -> None:
        """Re-issue the merged subscriptions that rode on a just-retracted
        coverer, in merge order.

        Each child keeps its local engine entry and re-enters through
        :meth:`_ingest` with a fresh issue number at the end of the issue
        order — exactly where a rebuild would place it — so it may
        re-merge under another advertised cover (including a sibling
        promoted just before it) or advertise into the fabric.
        """
        children = self._merged_children.pop(coverer_id, None)
        if not children:
            return
        for child_id in children:
            entry = self._merged.pop(child_id, None)
            if entry is None:
                continue
            home, subscription, _coverer = entry
            outcome, needs_walk = self._ingest(home, subscription, count=False)
            if needs_walk:
                self._propagate(home, subscription, outcome=outcome)
            self.metrics.counter("overlay.subscriptions_unmerged").increment()

    def unsubscribe_at(self, broker_name: str, subscription_id: str) -> bool:
        """Remove a subscription homed at ``broker_name``.

        Returns ``False`` when the id is unknown or homed elsewhere (the
        caller is not its owner), mirroring the per-broker semantics of
        ``Broker.unsubscribe_local``.  Retracting a merged subscription
        just drops its local registration and merge record; retracting an
        advertised one also promotes any merged subscriptions that rode
        on it.
        """
        merged = self._merged.get(subscription_id)
        if merged is not None:
            if merged[0] != broker_name:
                return False
            if subscription_id not in self.nodes[broker_name].local_engine:
                # Fabric bypassed — side-effect-free failure, like the
                # advertised path below.
                return False
            self._unmerge(subscription_id)
            self.metrics.counter("overlay.unsubscriptions").increment()
            return True
        homed = self._home_of.get(subscription_id)
        if homed is None or homed[0] != broker_name:
            return False
        removed = self._retract(subscription_id)
        if removed:
            self.metrics.counter("overlay.unsubscriptions").increment()
            self._check_canonical("unsubscribe")
        return removed

    def unsubscribe(self, client: str, subscription_id: str) -> bool:
        home = self._client_home.get(client)
        if home is None:
            return False
        return self.unsubscribe_at(home, subscription_id)

    def unsubscribe_many_at(
        self, broker_name: str, subscription_ids: Iterable[str]
    ) -> List[bool]:
        """Retract a batch of subscriptions homed at ``broker_name``.

        Snapshot-equivalent to :meth:`unsubscribe_at` in a loop (same
        per-id results, same canonical tables), but pruned-by readmission
        is flushed once per touched edge at the end of the batch instead
        of once per retraction.  Deferring is canonical because
        :meth:`_place` probes only the *selected* covering index: a
        not-yet-readmitted victim is simply absent while later batch
        members retract or merged children promote, and :meth:`_readmit`
        re-runs the greedy decision in issue order — booting any
        later-issued entry the victim covers — so every interleaving
        converges to the same per-edge greedy filter (the
        :attr:`verify_repairs` oracle cross-checks this).
        """
        results: List[bool] = []
        pending: Dict[RouteEntry, Set[str]] = {}
        removed = 0
        for subscription_id in subscription_ids:
            merged = self._merged.get(subscription_id)
            if merged is not None:
                if (
                    merged[0] != broker_name
                    or subscription_id not in self.nodes[broker_name].local_engine
                ):
                    results.append(False)
                    continue
                self._unmerge(subscription_id)
                removed += 1
                results.append(True)
                continue
            homed = self._home_of.get(subscription_id)
            if homed is None or homed[0] != broker_name:
                results.append(False)
                continue
            ok = self._retract_deferred(subscription_id, pending)
            if ok:
                removed += 1
            results.append(ok)
        for edge, victims in pending.items():
            self._readmit(edge, victims)
        if removed:
            self.metrics.counter("overlay.unsubscriptions").increment(removed)
            self._check_canonical("unsubscribe_many")
        return results

    def unsubscribe_many(
        self, client: str, subscription_ids: Iterable[str]
    ) -> List[bool]:
        """Batch-retract at the client's home broker."""
        home = self._client_home.get(client)
        if home is None:
            return [False for _ in subscription_ids]
        return self.unsubscribe_many_at(home, subscription_ids)

    def _retract_deferred(
        self, subscription_id: str, pending: Dict[RouteEntry, Set[str]]
    ) -> bool:
        """:meth:`_retract` with readmission deferred into ``pending``.

        Accumulates each purged route's prune victims per edge for the
        caller to flush in one :meth:`_readmit` pass per edge; everything
        else (home/seq/ingress bookkeeping, prune clearing, merged-child
        promotion) runs exactly as the sequential path does.  Victims
        that are themselves retracted later in the batch are skipped by
        ``_readmit``'s liveness check.
        """
        home, removed_sub = self._home_of[subscription_id]
        home_node = self.nodes[home]
        if subscription_id not in home_node.local_engine:
            return False
        home_node.unsubscribe_local(subscription_id)
        if self.audit is not None:
            self.audit.record("retracted", subscription_id, node=home)
        del self._home_of[subscription_id]
        del self._seq[subscription_id]
        self._unregister_ingress(home, removed_sub)
        for edge in list(self._pruned_at.get(subscription_id, ())):
            self._clear_prune(edge, subscription_id)
        for edge in list(self._routes.get(subscription_id, ())):
            victims = self._deselect(edge, subscription_id, collect_victims=True)
            if victims:
                pending.setdefault(edge, set()).update(victims)
        self._promote_children(subscription_id)
        return True

    def _retract(
        self, subscription_id: str, keep_local: bool = False, force: bool = False
    ) -> bool:
        """Drop a subscription and every route toward it, then repair.

        The reverse route index bounds the purge to entries that exist,
        and repair re-admits only the recorded prune victims of those
        entries — no sweep over nodes or live subscriptions.

        The failure path — the home broker's local engine no longer holds
        the id because the fabric was bypassed — is side-effect-free: no
        home-table, route or prune state changes and ``False`` returns.
        ``force`` overrides that for callers replacing or discarding the
        definition anyway (re-issue, node removal), where the old routing
        state must not linger.  ``keep_local`` leaves the home broker's
        local engine untouched (the caller is about to replace the entry
        in place).
        """
        home, removed_sub = self._home_of[subscription_id]
        home_node = self.nodes[home]
        present = subscription_id in home_node.local_engine
        if not present and not force:
            return False
        if present and not keep_local:
            home_node.unsubscribe_local(subscription_id)
        if self.audit is not None:
            self.audit.record("retracted", subscription_id, node=home)
        del self._home_of[subscription_id]
        del self._seq[subscription_id]
        self._unregister_ingress(home, removed_sub)
        for edge in list(self._pruned_at.get(subscription_id, ())):
            self._clear_prune(edge, subscription_id)
        pending: Dict[RouteEntry, Set[str]] = {}
        for edge in list(self._routes.get(subscription_id, ())):
            victims = self._deselect(edge, subscription_id, collect_victims=True)
            if victims:
                pending[edge] = victims
        for edge, victims in pending.items():
            self._readmit(edge, victims)
        # Merged subscriptions that rode on this coverer re-enter the
        # issue order now that the fabric is canonical again.
        self._promote_children(subscription_id)
        return present

    # -- per-edge canonical placement ----------------------------------------

    def _select(
        self,
        edge: RouteEntry,
        subscription: Subscription,
        seq: int,
        reason: str = "issued",
    ) -> None:
        node_name, via = edge
        node = self.nodes[node_name]
        self._route_version += 1
        node.learn_remote(via, subscription)
        node.stats.subscriptions_forwarded += 1
        table = self._tables.get(edge)
        if table is None:
            table = self._tables[edge] = _EdgeTable()
        table.covers.add(subscription, priority=seq)
        self._routes.setdefault(subscription.subscription_id, set()).add(edge)
        if self.audit is not None:
            self.audit.record(
                reason,
                subscription.subscription_id,
                node=node_name,
                via=via,
                seq=seq,
            )

    def _deselect(
        self, edge: RouteEntry, subscription_id: str, collect_victims: bool = False
    ) -> Set[str]:
        """Remove a selected entry; optionally detach and return its
        recorded prune victims (for re-admission by the caller)."""
        node_name, via = edge
        self._route_version += 1
        self.nodes[node_name].forget_remote(via, subscription_id)
        victims: Set[str] = set()
        table = self._tables.get(edge)
        if table is not None:
            table.covers.discard(subscription_id)
            if collect_victims:
                victims = table.victims_of.pop(subscription_id, set())
                for victim in victims:
                    table.blocker_of.pop(victim, None)
        routes = self._routes.get(subscription_id)
        if routes is not None:
            routes.discard(edge)
            if not routes:
                del self._routes[subscription_id]
        return victims

    def _record_prune(
        self,
        edge: RouteEntry,
        victim_id: str,
        blocker_id: str,
        reason: str = "covered-by",
    ) -> None:
        table = self._tables.get(edge)
        if table is None:
            table = self._tables[edge] = _EdgeTable()
        table.blocker_of[victim_id] = blocker_id
        table.victims_of.setdefault(blocker_id, set()).add(victim_id)
        self._pruned_at.setdefault(victim_id, set()).add(edge)
        if self.audit is not None:
            self.audit.record(
                reason, victim_id, node=edge[0], via=edge[1], blocker=blocker_id
            )

    def _clear_prune(self, edge: RouteEntry, victim_id: str) -> None:
        table = self._tables.get(edge)
        if table is not None:
            blocker = table.blocker_of.pop(victim_id, None)
            if blocker is not None:
                victims = table.victims_of.get(blocker)
                if victims is not None:
                    victims.discard(victim_id)
                    if not victims:
                        del table.victims_of[blocker]
        prunes = self._pruned_at.get(victim_id)
        if prunes is not None:
            prunes.discard(edge)
            if not prunes:
                del self._pruned_at[victim_id]

    def _drop_edge_state(self, edge: RouteEntry) -> None:
        """Forget all bookkeeping of a table position whose link is gone
        (the node-side engine is dropped by ``remove_neighbour``)."""
        self._route_version += 1
        table = self._tables.pop(edge, None)
        if table is None:
            return
        for subscription_id in table.covers.ids():
            routes = self._routes.get(subscription_id)
            if routes is not None:
                routes.discard(edge)
                if not routes:
                    del self._routes[subscription_id]
        for victim in table.blocker_of:
            prunes = self._pruned_at.get(victim)
            if prunes is not None:
                prunes.discard(edge)
                if not prunes:
                    del self._pruned_at[victim]

    def _place(self, edge: RouteEntry, subscription: Subscription, seq: int) -> bool:
        """The canonical greedy decision for one candidate at one edge.

        Selected iff no earlier-issued selected candidate covers it; on
        selection, later-issued entries it covers are evicted (their
        victims transfer by covering transitivity).  Returns ``True``
        when the subscription was learned at this edge.
        """
        subscription_id = subscription.subscription_id
        table = self._tables.get(edge)
        if table is None:
            table = self._tables[edge] = _EdgeTable()
        cover = table.covers.first_cover(
            subscription, before=seq, exclude=subscription_id
        )
        if cover is not None:
            self._record_prune(edge, subscription_id, cover.subscription_id)
            return False
        self._select(edge, subscription, seq)
        for booted in table.covers.covered_by(
            subscription, after=seq, exclude=subscription_id
        ):
            self._boot(edge, booted.subscription_id, subscription_id)
        return True

    def _boot(self, edge: RouteEntry, booted_id: str, cover_id: str) -> None:
        """Evict a later-issued selected entry that ``cover_id`` covers.

        The evicted entry's own recorded victims are covered by the new
        cover too (covering is transitive), so they transfer to it rather
        than being re-examined.
        """
        inherited = self._deselect(edge, booted_id, collect_victims=True)
        for victim in inherited:
            self._record_prune(edge, victim, cover_id)
        self._record_prune(edge, booted_id, cover_id, reason="evicted")

    def _readmit(
        self,
        edge: RouteEntry,
        victim_ids: Iterable[str],
        candidate: Optional[Callable[[str], bool]] = None,
    ) -> None:
        """Re-run the greedy decision for victims whose blocker left.

        Victims are processed in issue order so earlier re-admissions can
        block later ones exactly as a fresh build would.  ``candidate``
        filters out victims that no longer route through this edge at all
        (their home fell on the same side of a cut as the edge's node);
        their prune records are simply dropped.
        """
        readmitted = 0
        seq_of = self._seq
        for victim_id in sorted(victim_ids, key=lambda vid: seq_of.get(vid, 0)):
            if victim_id not in self._home_of or (
                candidate is not None and not candidate(victim_id)
            ):
                self._clear_prune(edge, victim_id)
                continue
            subscription = self._home_of[victim_id][1]
            seq = seq_of[victim_id]
            table = self._tables.get(edge)
            if table is None:
                table = self._tables[edge] = _EdgeTable()
            cover = table.covers.first_cover(subscription, before=seq, exclude=victim_id)
            if cover is not None:
                # Still covered — just re-point the prune record.
                table.blocker_of[victim_id] = cover.subscription_id
                table.victims_of.setdefault(cover.subscription_id, set()).add(victim_id)
                if self.audit is not None:
                    self.audit.record(
                        "covered-by",
                        victim_id,
                        node=edge[0],
                        via=edge[1],
                        blocker=cover.subscription_id,
                    )
                continue
            prunes = self._pruned_at.get(victim_id)
            if prunes is not None:
                prunes.discard(edge)
                if not prunes:
                    del self._pruned_at[victim_id]
            self._select(edge, subscription, seq, reason="readmitted-victim")
            readmitted += 1
            for booted in table.covers.covered_by(
                subscription, after=seq, exclude=victim_id
            ):
                self._boot(edge, booted.subscription_id, victim_id)
        if readmitted:
            self.metrics.counter("overlay.routes_readmitted").increment(readmitted)

    def _walk_edges(
        self, origin: str, via: Optional[Tuple[str, str]] = None
    ) -> List[RouteEntry]:
        """Directed table positions a subscription homed at ``origin``
        must be placed at, in BFS visit order.

        With ``via=(from_broker, to_broker)`` the walk starts across that
        single edge instead of fanning out from ``origin`` — used when a
        new link joins two components and routes must be advertised into
        the far side only.  The walk is subscription-independent (pruning
        does not stop the BFS), which is what lets a whole batch share
        one walk.

        In mesh mode the generalized candidate rule applies instead
        (:meth:`_mesh_edges`; ``via`` is never used there — mesh topology
        changes go through :meth:`_retopology_repair`).
        """
        if self.allow_cycles:
            return self._mesh_edges(origin)
        if via is None:
            visited = {origin}
            queue = deque((origin, neighbour) for neighbour in self._edges[origin])
        else:
            from_broker, to_broker = via
            visited = {from_broker}
            queue = deque([(from_broker, to_broker)])
        edges: List[RouteEntry] = []
        while queue:
            from_broker, to_broker = queue.popleft()
            if to_broker in visited:
                continue
            visited.add(to_broker)
            edges.append((to_broker, from_broker))
            for neighbour in self._edges[to_broker]:
                if neighbour not in visited:
                    queue.append((to_broker, neighbour))
        return edges

    def _mesh_edges(self, origin: str) -> List[RouteEntry]:
        """Directed table positions a subscription homed at ``origin``
        occupies on a (possibly cyclic) overlay.

        A position ``(node, via)`` is a candidate iff ``origin`` is
        reachable from ``via`` with ``node`` itself removed from the
        graph — i.e. the via-neighbour lies on some path from the node
        toward the home that does not double back through the node.  On
        a forest exactly one neighbour per node qualifies (the parent
        toward the home), so the rule reduces to the acyclic BFS walk;
        on a mesh every neighbour on *any* redundant path qualifies,
        which is what lets delivery survive a link or broker loss (the
        transport's per-event dedup suppresses the duplicate arrivals).

        Results are cached per home until the next topology change.
        """
        if self._mesh_walk_version != self._topology_version:
            self._mesh_walk_cache.clear()
            self._mesh_walk_version = self._topology_version
        cached = self._mesh_walk_cache.get(origin)
        if cached is not None:
            return cached
        # BFS node order from the home keeps the emitted edge list
        # distance-layered and deterministic (hop metrics, audit order).
        order: List[str] = []
        seen = {origin}
        queue = deque([origin])
        while queue:
            current = queue.popleft()
            order.append(current)
            for neighbour in sorted(self._edges[current]):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        edges: List[RouteEntry] = []
        for node in order:
            if node == origin:
                continue
            reachable = self._reachable_without(origin, node)
            for via in sorted(self._edges[node]):
                if via in reachable:
                    edges.append((node, via))
        self._mesh_walk_cache[origin] = edges
        return edges

    def _reachable_without(self, start: str, removed: str) -> Set[str]:
        """Brokers reachable from ``start`` with ``removed`` cut out."""
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour in self._edges[current]:
                if neighbour != removed and neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def _propagate(
        self,
        origin: str,
        subscription: Subscription,
        via: Optional[Tuple[str, str]] = None,
        outcome: Optional[SubscribeOutcome] = None,
    ) -> SubscribeOutcome:
        """Breadth-first propagation: each broker records which neighbour
        leads back toward the subscriber, pruned by covering relations
        through the per-edge canonical placement.
        """
        if outcome is None:
            outcome = SubscribeOutcome(
                subscription_id=subscription.subscription_id, home_broker=origin
            )
        seq = self._seq[subscription.subscription_id]
        for edge in self._walk_edges(origin, via):
            if self._place(edge, subscription, seq):
                outcome.hops += 1
                self.metrics.counter("overlay.subscription_hops").increment()
            else:
                outcome.pruned += 1
                self.metrics.counter("overlay.subscription_pruned").increment()
        return outcome

    def _propagate_many(
        self,
        origin: str,
        advertise: List[Tuple[Subscription, SubscribeOutcome]],
        via: Optional[Tuple[str, str]] = None,
    ) -> None:
        """Advertise a batch of subscriptions homed at ``origin`` (in
        ascending issue order) over ONE edge walk.

        Canonically equivalent to calling :meth:`_propagate` per
        subscription: the walk's edge list is subscription-independent,
        and per-edge placements run in ascending issue order.  Two
        amortizations make the batch cheap:

        * the BFS over the component runs once, not per subscription;
        * a batch member covered by an *earlier batch member* copies that
          member's per-edge fate — blocker = the member itself where it
          was selected, else the member's own blocker (selected, earlier
          issued, covers by transitivity) — with two dict operations per
          edge instead of a covering probe against every edge table.
          (During the batch nothing is deselected and boots transfer
          victims to the booting cover, so a placed member's per-edge
          fate stays valid for the rest of the walk.)

        Only slow-path (non-copied) members enter the batch covering
        index: a copied member's own covers are covered by its cover too
        (transitivity), so probing the much smaller placed set finds a
        valid cover whenever any batch cover exists, and the probe cost
        stays bounded by the batch's *distinct* shapes rather than its
        size.
        """
        edges = self._walk_edges(origin, via)
        if not edges:
            return
        batch_covers = CoveringIndex()
        num_edges = len(edges)
        pruned_at = self._pruned_at
        # cover id -> precomputed (blocker_of dict, blocker id, victims set)
        # per edge.  A placed member's per-edge fate is frozen for the
        # rest of the walk (nothing is deselected during a batch, and a
        # fresh subscribe carries the highest seq so it never boots), so
        # every member sharing a cover replays the same plan.
        plans: Dict[str, Optional[List[Tuple[Dict[str, str], str, Set[str]]]]] = {}
        # signature id -> resolved batch cover for that signature: the
        # first slow-path member carrying it, or the cover the first such
        # member copied.  Equal signatures cover each other and batch
        # covers stay placed, so the decision is stable for the whole
        # batch — every later same-shape member costs one dict probe
        # instead of a covering-index query.
        shape_cover: Dict[int, str] = {}
        # cover id -> every member replaying its plan.  Flushed into the
        # edge tables in bulk after the walk: one C-level set/dict update
        # per (plan, edge) instead of a Python loop per member x edge.
        fast_members: Dict[str, List[str]] = {}
        total_hops = 0
        total_pruned = 0
        for subscription, outcome in advertise:
            subscription_id = subscription.subscription_id
            signature_id = subscription.signature_id()
            cover_id = (
                shape_cover.get(signature_id) if signature_id is not None else None
            )
            if cover_id is None:
                cover = batch_covers.first_cover(
                    subscription, exclude=subscription_id
                )
                cover_id = None if cover is None else cover.subscription_id
            if cover_id is not None:
                plan = plans.get(cover_id, False)
                if plan is False:
                    cover_routes = self._routes.get(cover_id) or ()
                    plan = []
                    for edge in edges:
                        table = self._tables.get(edge)
                        if edge in cover_routes:
                            blocker_id = cover_id
                        else:
                            blocker_id = (
                                None if table is None else table.blocker_of.get(cover_id)
                            )
                        if blocker_id is None or table is None:  # pragma: no cover
                            plan = None
                            break
                        plan.append(
                            (
                                table.blocker_of,
                                blocker_id,
                                table.victims_of.setdefault(blocker_id, set()),
                            )
                        )
                    plans[cover_id] = plan
                if plan is not None:
                    if signature_id is not None and signature_id not in shape_cover:
                        shape_cover[signature_id] = cover_id
                    fast_members.setdefault(cover_id, []).append(subscription_id)
                    pruned_at.setdefault(subscription_id, set()).update(edges)
                    outcome.pruned += num_edges
                    total_pruned += num_edges
                    continue
            seq = self._seq[subscription_id]
            hops = 0
            pruned = 0
            for edge in edges:
                if self._place(edge, subscription, seq):
                    hops += 1
                else:
                    pruned += 1
            outcome.hops += hops
            outcome.pruned += pruned
            total_hops += hops
            total_pruned += pruned
            batch_covers.add(subscription, priority=seq)
            if signature_id is not None and signature_id not in shape_cover:
                shape_cover[signature_id] = subscription_id
        # Bulk flush of the replayed plans.  Safe to defer: nothing between
        # the fast-path decision and this point reads the pruned-by graph
        # (_place only probes the *selected* index), and superseded same-id
        # batch entries were filtered out before the walk.
        for cover_id, member_ids in fast_members.items():
            for blocker_of, blocker_id, victims in plans[cover_id]:
                victims.update(member_ids)
                blocker_of.update(dict.fromkeys(member_ids, blocker_id))
        if total_hops:
            self.metrics.counter("overlay.subscription_hops").increment(total_hops)
        if total_pruned:
            self.metrics.counter("overlay.subscription_pruned").increment(total_pruned)

    # -- data plane decision --------------------------------------------------

    @property
    def route_version(self) -> int:
        """Monotonic counter bumped on every control-plane mutation.

        The data-plane route-set cache (and any external cache of
        :meth:`next_hops` answers) is valid only while this value holds
        still; batched forwarders re-check it per flush so a mid-batch
        retraction invalidates routes computed earlier in the batch.
        """
        return self._route_version

    def _bump_route_version(self) -> None:
        self._route_version += 1

    def next_hops(
        self,
        broker_name: str,
        event: Event,
        came_from: Optional[str] = None,
        flood: bool = False,
    ) -> List[str]:
        """Neighbours the event must be forwarded to from ``broker_name``.

        With ``flood=True`` every neighbour except the arrival link is a
        next hop (the baseline); otherwise only neighbours whose routing
        table holds at least one subscription matching the event.

        Routed answers are cached per (node, arrival link, event
        signature) until the next control-plane mutation, so a batch of
        same-shape events pays one ``interested_neighbours`` walk instead
        of one per event.  Callers must treat the returned list as
        read-only.
        """
        if flood:
            return sorted(n for n in self._edges[broker_name] if n != came_from)
        cache = self._route_cache
        if self._route_cache_version != self._route_version:
            cache.clear()
            self._route_cache_version = self._route_version
        try:
            key = (
                broker_name,
                came_from,
                event.event_type,
                tuple(sorted(event.attributes.items())),
            )
        except TypeError:
            # Unhashable/unorderable attribute values: uncacheable event.
            return self.nodes[broker_name].interested_neighbours(
                event, exclude=came_from
            )
        hops = cache.get(key)
        if hops is None:
            if len(cache) >= self.route_cache_max:
                cache.clear()
            hops = self.nodes[broker_name].interested_neighbours(
                event, exclude=came_from
            )
            cache[key] = hops
        return hops

    # -- reporting ------------------------------------------------------------

    def subscription_home(self, subscription_id: str) -> Optional[str]:
        homed = self._home_of.get(subscription_id)
        if homed is not None:
            return homed[0]
        merged = self._merged.get(subscription_id)
        return merged[0] if merged is not None else None

    def live_subscriptions(self) -> List[Subscription]:
        """Advertised live subscriptions (excludes ingress-merged ones;
        see :meth:`merged_subscriptions`)."""
        return [subscription for _home, subscription in self._home_of.values()]

    def homed_subscriptions(self) -> List[Tuple[str, Subscription]]:
        """Advertised ``(home broker, subscription)`` pairs in issue
        order — the set a rebuild re-subscribes.  Ingress-merged
        subscriptions hold no fabric state and are reported separately."""
        return list(self._home_of.values())

    def merged_subscriptions(self) -> List[Tuple[str, Subscription, str]]:
        """Ingress-merged ``(home, subscription, coverer id)`` records."""
        return [
            (home, subscription, coverer_id)
            for home, subscription, coverer_id in self._merged.values()
        ]

    def edges(self) -> List[Tuple[str, str]]:
        """Current overlay links, each reported once (sorted endpoint order)."""
        seen = set()
        for name, neighbours in self._edges.items():
            for neighbour in neighbours:
                seen.add((name, neighbour) if name < neighbour else (neighbour, name))
        return sorted(seen)

    def routing_snapshot(self) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Canonical view of all routing state, for convergence checks:
        node -> neighbour -> sorted ids of subscriptions routed via it
        (neighbours with empty tables are omitted)."""
        snapshot: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            tables = {
                neighbour: tuple(
                    sorted(s.subscription_id for s in engine.subscriptions())
                )
                for neighbour, engine in node.remote_engines.items()
                if len(engine)
            }
            if tables:
                snapshot[name] = tables
        return snapshot

    def rebuilt_snapshot(
        self, edges: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Routing state of a fabric built from scratch on this fabric's
        surviving topology (its current edges unless ``edges`` is given),
        subscribing the live set in its original issue order — the
        verification oracle every delta repair is held equal to."""
        fresh = RoutingFabric(allow_cycles=self.allow_cycles)
        for name in self.node_names():
            fresh.add_node(name, Broker(name))
        for first, second in self.edges() if edges is None else edges:
            fresh.connect(first, second)
        for home, subscription in self.homed_subscriptions():
            fresh.subscribe_at(home, subscription)
        return fresh.routing_snapshot()

    def _check_canonical(self, context: str) -> None:
        if not self.verify_repairs:
            return
        live = self.routing_snapshot()
        rebuilt = self.rebuilt_snapshot()
        if live != rebuilt:
            raise AssertionError(
                f"delta repair diverged from a fresh rebuild after {context}"
            )

    def total_routing_state(self) -> int:
        return sum(node.routing_table_size() for node in self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)
