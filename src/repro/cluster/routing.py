"""Transport-agnostic content-based routing core (the message plane).

Routing in this system has two halves that must never diverge:

* the *control plane* — subscriptions issued at a broker propagate through
  the overlay so every broker records, per neighbour, which subscriptions
  are reachable via that neighbour (pruned by covering relations);
* the *data plane decision* — given an event at a broker, which neighbours
  lead toward matching subscriptions.

Before this module existed both halves lived inside the synchronous
:class:`~repro.pubsub.router.BrokerOverlay`, so the sim-clock
:class:`~repro.cluster.broker_cluster.BrokerCluster` could not route
between its brokers at all.  :class:`RoutingFabric` extracts topology
management, subscription propagation, unsubscription repair and the
forwarding decision into one component that any transport can drive: the
overlay walks the fabric's next-hop answers synchronously, the cluster
turns them into forwarding messages through broker mailboxes with
simulated link latency.

The fabric operates on :class:`~repro.pubsub.broker.Broker` nodes (or
anything with the same routing surface: ``subscribe_local`` /
``unsubscribe_local`` / ``learn_remote`` / ``forget_remote`` /
``remote_engines`` / ``interested_neighbours`` / ``stats``).

Covering-prune repair
---------------------

Propagation prunes a subscription's route at a broker when an
already-known route via the same neighbour *covers* it (Siena semantics:
any event matching the covered subscription also matches the covering one,
so the covering route suffices).  That makes removal subtle: retracting a
subscription must *re-advertise* every remaining subscription it covered,
because their routes may exist nowhere upstream — the seed overlay skipped
this and silently stopped forwarding events to covered subscriptions once
their cover left (see ``tests/pubsub/test_routing.py``
``test_unsubscribe_restores_covered_routes``).  Re-issuing a subscription
id with a changed definition retracts the old definition the same way
before propagating the new one, so stale routes cannot linger either.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.pubsub.events import Event
from repro.pubsub.subscriptions import Subscription
from repro.sim.metrics import MetricsRegistry


@dataclass
class SubscribeOutcome:
    """Control-plane accounting for one subscription propagation."""

    subscription_id: str
    home_broker: str
    hops: int = 0
    pruned: int = 0
    replaced: bool = False


class RoutingFabric:
    """Topology + routing state shared by every broker transport.

    The fabric owns the overlay graph (kept acyclic), the client→home
    mapping, and the id→home mapping of live subscriptions; per-broker
    routing tables live on the node objects themselves so the matching
    fast paths (``interested_neighbours`` → ``matches_any``) stay where
    the engines are.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.nodes: Dict[str, object] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._edges: Dict[str, Set[str]] = {}
        self._client_home: Dict[str, str] = {}
        # subscription id -> (home broker, live definition); the definition
        # is kept so retraction can repair routes it may have pruned.
        self._home_of: Dict[str, Tuple[str, Subscription]] = {}

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str, node: object) -> None:
        if name in self.nodes:
            raise ValueError(f"broker {name!r} already exists")
        self.nodes[name] = node
        self._edges[name] = set()

    def connect(self, first: str, second: str, propagate: bool = True) -> None:
        """Join two brokers with a bidirectional overlay link.

        The overlay must remain acyclic; connecting two brokers already
        joined by a path raises ``ValueError``.

        With ``propagate=False`` only the edge structure is added — for
        callers that immediately canonicalize with
        :meth:`reroute_component` (link failback), where the edge-merge
        advertisement would be cleared and rebuilt anyway.
        """
        if first not in self.nodes or second not in self.nodes:
            raise KeyError("both brokers must exist before connecting them")
        if first == second:
            raise ValueError("cannot connect a broker to itself")
        if self.path_exists(first, second):
            raise ValueError("overlay must remain acyclic (path already exists)")
        # The components being joined, captured before the edge exists:
        # each side's live subscriptions must be advertised *into the other
        # side only* — brokers on a subscription's own side already hold
        # its routes, so re-walking them would just inflate hop stats.
        first_side = self._component(first) if propagate else None
        self._edges[first].add(second)
        self._edges[second].add(first)
        self.nodes[first].add_neighbour(second)
        self.nodes[second].add_neighbour(first)
        if not propagate:
            return
        for home, subscription in list(self._home_of.values()):
            if home in first_side:
                self._propagate(home, subscription, via=(first, second))
            else:
                self._propagate(home, subscription, via=(second, first))

    def disconnect(self, first: str, second: str) -> bool:
        """Remove the overlay link between two brokers and repair routes.

        The overlay splits into two components.  Each side purges every
        route toward subscriptions homed on the *other* side (they are
        unreachable now) and re-derives its own routing state by
        re-propagating the subscriptions homed within it — propagation is
        covering-aware, so the surviving tables end up exactly what a
        fabric freshly built on the shrunken topology would hold (routes
        pruned in favour of now-unreachable covers are re-advertised).

        Returns ``False`` when no such link exists.
        """
        if second not in self._edges.get(first, ()):
            return False
        self._edges[first].discard(second)
        self._edges[second].discard(first)
        self.nodes[first].remove_neighbour(second)
        self.nodes[second].remove_neighbour(first)
        self.metrics.counter("overlay.links_removed").increment()
        self.reroute_component(first)
        self.reroute_component(second)
        return True

    def remove_node(self, name: str) -> None:
        """Permanently remove a broker: links, routes, and homed state.

        Subscriptions homed at the broker leave the system with it (their
        routes elsewhere are repaired by the per-link disconnects); use
        link removal alone to model a *temporary* outage where the homed
        subscription set should survive for later re-advertisement.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown broker {name!r}")
        # Tear every edge down structurally first, then repair: routing
        # each surviving component exactly once instead of re-rebuilding
        # the shrinking remainder per disconnect (quadratic for hubs).
        neighbours = list(self._edges[name])
        for neighbour in neighbours:
            self._edges[name].discard(neighbour)
            self._edges[neighbour].discard(name)
            self.nodes[name].remove_neighbour(neighbour)
            self.nodes[neighbour].remove_neighbour(name)
            self.metrics.counter("overlay.links_removed").increment()
        for subscription_id, (home, _sub) in list(self._home_of.items()):
            if home == name:
                del self._home_of[subscription_id]
        for client, home in list(self._client_home.items()):
            if home == name:
                del self._client_home[client]
        del self._edges[name]
        del self.nodes[name]
        rerouted: Set[str] = set()
        for neighbour in neighbours:
            if neighbour not in rerouted:
                rerouted |= self._component(neighbour)
                self.reroute_component(neighbour)

    def reroute_component(self, start: str) -> None:
        """Rebuild the routing tables of ``start``'s component from scratch.

        Clears every member's per-neighbour tables and re-propagates each
        live subscription homed inside the component in issue order — the
        same order a fresh build would use, so covering pruning resolves
        identically and stale routes (toward homes outside the component)
        simply never reappear.  Link *restoration* paths call this after
        ``connect`` because the incremental edge-merge, while sound for
        delivery, prunes by arrival order rather than issue order and so
        cannot guarantee snapshot equality with a fresh build.
        """
        component = self._component(start)
        for name in component:
            node = self.nodes[name]
            for neighbour in list(node.remote_engines):
                node.clear_remote(neighbour)
        for home, subscription in list(self._home_of.values()):
            if home in component:
                self._propagate(home, subscription)
        self.metrics.counter("overlay.route_repairs").increment()

    def path_exists(self, start: str, goal: str) -> bool:
        return goal in self._component(start)

    def _component(self, start: str) -> Set[str]:
        """All brokers reachable from ``start`` over current edges."""
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour in self._edges[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def neighbours(self, broker_name: str) -> Set[str]:
        return set(self._edges[broker_name])

    def node_names(self) -> List[str]:
        return sorted(self.nodes)

    # -- client attachment ---------------------------------------------------

    def attach_client(self, client: str, broker_name: str) -> None:
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        self._client_home[client] = broker_name

    def home_broker(self, client: str) -> Optional[str]:
        return self._client_home.get(client)

    def require_home(self, client: str) -> str:
        home = self._client_home.get(client)
        if home is None:
            raise KeyError(f"client {client!r} is not attached to a broker")
        return home

    # -- control plane: subscription propagation -----------------------------

    def subscribe_at(self, broker_name: str, subscription: Subscription) -> SubscribeOutcome:
        """Place a subscription at ``broker_name`` and propagate its route.

        Re-issuing a live subscription id first retracts the old
        definition's routing state everywhere (with covering repair), so
        the new definition starts from a clean table.
        """
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        subscription_id = subscription.subscription_id
        replaced = False
        if subscription_id in self._home_of:
            # Re-issue at the same home keeps the local engine entry so the
            # node's replace-on-readd path sees a known id and does not
            # double-count subscriptions_received; a home move is a real
            # removal at the old broker plus a fresh placement at the new.
            old_home = self._home_of[subscription_id][0]
            self._retract(
                subscription_id,
                keep_local=(old_home == broker_name),
            )
            replaced = True
        self.nodes[broker_name].subscribe_local(subscription)
        self._home_of[subscription_id] = (broker_name, subscription)
        self.metrics.counter("overlay.subscriptions").increment()
        outcome = self._propagate(broker_name, subscription)
        outcome.replaced = replaced
        return outcome

    def subscribe(self, client: str, subscription: Subscription) -> SubscribeOutcome:
        """Place a subscription at the client's home broker."""
        return self.subscribe_at(self.require_home(client), subscription)

    def unsubscribe_at(self, broker_name: str, subscription_id: str) -> bool:
        """Remove a subscription homed at ``broker_name``.

        Returns ``False`` when the id is unknown or homed elsewhere (the
        caller is not its owner), mirroring the per-broker semantics of
        ``Broker.unsubscribe_local``.
        """
        homed = self._home_of.get(subscription_id)
        if homed is None or homed[0] != broker_name:
            return False
        removed = self._retract(subscription_id)
        if removed:
            self.metrics.counter("overlay.unsubscriptions").increment()
        return removed

    def unsubscribe(self, client: str, subscription_id: str) -> bool:
        home = self._client_home.get(client)
        if home is None:
            return False
        return self.unsubscribe_at(home, subscription_id)

    def _retract(self, subscription_id: str, keep_local: bool = False) -> bool:
        """Drop a subscription and every route toward it, then repair.

        Repair re-propagates every remaining subscription the removed
        definition covered: their routes may have been pruned in favour of
        the removed one and must be re-advertised from their home brokers
        (propagation is idempotent — still-covered routes prune again).

        ``keep_local`` leaves the home broker's local engine untouched
        (the caller is about to replace the entry in place).
        """
        home, removed_sub = self._home_of.pop(subscription_id)
        home_node = self.nodes[home]
        if keep_local:
            removed = subscription_id in home_node.local_engine
        else:
            removed = home_node.unsubscribe_local(subscription_id)
        for node in self.nodes.values():
            for neighbour in list(node.remote_engines):
                node.forget_remote(neighbour, subscription_id)
        if not removed:
            return False
        for other_home, survivor in self._home_of.values():
            if removed_sub.covers(survivor):
                self._propagate(other_home, survivor)
        return True

    def _propagate(
        self,
        origin: str,
        subscription: Subscription,
        via: Optional[Tuple[str, str]] = None,
    ) -> SubscribeOutcome:
        """Breadth-first propagation: each broker records which neighbour
        leads back toward the subscriber, pruned by covering relations.

        With ``via=(from_broker, to_broker)`` the walk starts across that
        single edge instead of fanning out from ``origin`` — used when a
        new link joins two components and routes must be advertised into
        the far side only.
        """
        outcome = SubscribeOutcome(
            subscription_id=subscription.subscription_id, home_broker=origin
        )
        if via is None:
            visited = {origin}
            queue = deque((origin, neighbour) for neighbour in self._edges[origin])
        else:
            from_broker, to_broker = via
            visited = {from_broker}
            queue = deque([(from_broker, to_broker)])
        while queue:
            from_broker, to_broker = queue.popleft()
            if to_broker in visited:
                continue
            visited.add(to_broker)
            node = self.nodes[to_broker]
            # Covering check: if an already-known subscription via this
            # neighbour covers the new one, the routing state is unchanged.
            existing = node.remote_engines.get(from_broker)
            if existing is not None and existing.any_covering(subscription):
                outcome.pruned += 1
                self.metrics.counter("overlay.subscription_pruned").increment()
            else:
                node.learn_remote(from_broker, subscription)
                node.stats.subscriptions_forwarded += 1
                outcome.hops += 1
                self.metrics.counter("overlay.subscription_hops").increment()
            for neighbour in self._edges[to_broker]:
                if neighbour not in visited:
                    queue.append((to_broker, neighbour))
        return outcome

    # -- data plane decision --------------------------------------------------

    def next_hops(
        self,
        broker_name: str,
        event: Event,
        came_from: Optional[str] = None,
        flood: bool = False,
    ) -> List[str]:
        """Neighbours the event must be forwarded to from ``broker_name``.

        With ``flood=True`` every neighbour except the arrival link is a
        next hop (the baseline); otherwise only neighbours whose routing
        table holds at least one subscription matching the event.
        """
        if flood:
            return sorted(n for n in self._edges[broker_name] if n != came_from)
        return self.nodes[broker_name].interested_neighbours(event, exclude=came_from)

    # -- reporting ------------------------------------------------------------

    def subscription_home(self, subscription_id: str) -> Optional[str]:
        homed = self._home_of.get(subscription_id)
        return homed[0] if homed is not None else None

    def live_subscriptions(self) -> List[Subscription]:
        return [subscription for _home, subscription in self._home_of.values()]

    def homed_subscriptions(self) -> List[Tuple[str, Subscription]]:
        """Live ``(home broker, subscription)`` pairs in issue order."""
        return list(self._home_of.values())

    def edges(self) -> List[Tuple[str, str]]:
        """Current overlay links, each reported once (sorted endpoint order)."""
        seen = set()
        for name, neighbours in self._edges.items():
            for neighbour in neighbours:
                seen.add((name, neighbour) if name < neighbour else (neighbour, name))
        return sorted(seen)

    def routing_snapshot(self) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Canonical view of all routing state, for convergence checks:
        node -> neighbour -> sorted ids of subscriptions routed via it
        (neighbours with empty tables are omitted)."""
        snapshot: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            tables = {
                neighbour: tuple(
                    sorted(s.subscription_id for s in engine.subscriptions())
                )
                for neighbour, engine in node.remote_engines.items()
                if len(engine)
            }
            if tables:
                snapshot[name] = tables
        return snapshot

    def total_routing_state(self) -> int:
        return sum(node.routing_table_size() for node in self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)
