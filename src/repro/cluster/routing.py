"""Transport-agnostic content-based routing core (the message plane).

Routing in this system has two halves that must never diverge:

* the *control plane* — subscriptions issued at a broker propagate through
  the overlay so every broker records, per neighbour, which subscriptions
  are reachable via that neighbour (pruned by covering relations);
* the *data plane decision* — given an event at a broker, which neighbours
  lead toward matching subscriptions.

Before this module existed both halves lived inside the synchronous
:class:`~repro.pubsub.router.BrokerOverlay`, so the sim-clock
:class:`~repro.cluster.broker_cluster.BrokerCluster` could not route
between its brokers at all.  :class:`RoutingFabric` extracts topology
management, subscription propagation, unsubscription repair and the
forwarding decision into one component that any transport can drive: the
overlay walks the fabric's next-hop answers synchronously, the cluster
turns them into forwarding messages through broker mailboxes with
simulated link latency.

The fabric operates on :class:`~repro.pubsub.broker.Broker` nodes (or
anything with the same routing surface: ``subscribe_local`` /
``unsubscribe_local`` / ``learn_remote`` / ``forget_remote`` /
``remote_engines`` / ``interested_neighbours`` / ``stats``).

Incremental control plane
-------------------------

Every routing decision reduces to one canonical per-edge rule.  For each
*directed* table entry position — a ``(node, via-neighbour)`` pair — the
candidates are the live subscriptions whose home lies beyond that
neighbour, and the table holds exactly the greedy covering filter of the
candidates in subscription *issue order*: a candidate is selected unless
an earlier-issued selected candidate covers it (Siena semantics: the
covering route already forwards every event the covered one matches).
Because the rule is per-edge and order-canonical, the whole fabric state
is a pure function of (topology, issue-ordered live subscriptions) — the
property the convergence oracle (:meth:`rebuilt_snapshot`) checks.

The fabric maintains that rule *incrementally* instead of rebuilding:

* a **reverse route index** (subscription id → selected table entries)
  makes retraction touch only the routes that exist;
* a **pruned-by graph** records, per edge, which selected cover
  suppressed which candidate — retraction re-admits only actual victims,
  found by :class:`~repro.pubsub.subscriptions.CoveringIndex` lookups
  rather than ``covers()``-scanning every live subscription;
* re-admitted candidates evict later-issued entries they cover (whose own
  victims transfer by covering transitivity), so any mutation order
  converges to the same canonical tables — link restoration merges two
  components without the full component rebuild PR 4 paid;
* :meth:`disconnect`/:meth:`remove_node` purge only state that crossed
  the cut and repair only its victims (**delta repair**), with
  :meth:`reroute_component` retained as the from-scratch verification
  path (set :attr:`verify_repairs` to cross-check every mutation).

Covering-prune repair
---------------------

Propagation prunes a subscription's route at a broker when an
already-known route via the same neighbour *covers* it.  That makes
removal subtle: retracting a subscription must *re-advertise* every
remaining subscription it covered, because their routes may exist nowhere
upstream — the seed overlay skipped this and silently stopped forwarding
events to covered subscriptions once their cover left (see
``tests/pubsub/test_routing.py``
``test_unsubscribe_restores_covered_routes``).  Re-issuing a subscription
id with a changed definition retracts the old definition the same way
before propagating the new one, so stale routes cannot linger either.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.pubsub.broker import Broker
from repro.pubsub.events import Event
from repro.pubsub.subscriptions import CoveringIndex, Subscription
from repro.sim.metrics import MetricsRegistry

# A directed routing-table position: (node name, via-neighbour name).
RouteEntry = Tuple[str, str]


@dataclass
class SubscribeOutcome:
    """Control-plane accounting for one subscription propagation."""

    subscription_id: str
    home_broker: str
    hops: int = 0
    pruned: int = 0
    replaced: bool = False


class _EdgeTable:
    """Control-plane bookkeeping for one directed table position.

    ``covers`` indexes the *selected* subscriptions (the ones actually in
    the node's per-neighbour matching engine), keyed by issue sequence;
    the pruned-by graph links every suppressed candidate to the selected
    cover that blocks it, in both directions.
    """

    __slots__ = ("covers", "blocker_of", "victims_of")

    def __init__(self) -> None:
        self.covers = CoveringIndex()
        self.blocker_of: Dict[str, str] = {}
        self.victims_of: Dict[str, Set[str]] = {}


class RoutingFabric:
    """Topology + routing state shared by every broker transport.

    The fabric owns the overlay graph (kept acyclic), the client→home
    mapping, and the id→home mapping of live subscriptions; per-broker
    routing tables live on the node objects themselves so the matching
    fast paths (``interested_neighbours`` → ``matches_any``) stay where
    the engines are.  With ``verify_repairs`` every mutation cross-checks
    the incremental result against a from-scratch rebuild (the CI churn
    oracle) and raises ``AssertionError`` on divergence.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        verify_repairs: bool = False,
    ) -> None:
        self.nodes: Dict[str, object] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._edges: Dict[str, Set[str]] = {}
        self._client_home: Dict[str, str] = {}
        # subscription id -> (home broker, live definition); insertion
        # order is issue order (re-issues move to the end), matching the
        # ascending `_seq` numbers the per-edge covering filter uses.
        self._home_of: Dict[str, Tuple[str, Subscription]] = {}
        self._seq: Dict[str, int] = {}
        self._next_seq = 1
        # Reverse route index: subscription id -> selected table entries.
        self._routes: Dict[str, Set[RouteEntry]] = {}
        # Reverse prune index: subscription id -> entries where a cover
        # suppresses it (the blocker lives in that edge's table).
        self._pruned_at: Dict[str, Set[RouteEntry]] = {}
        self._tables: Dict[RouteEntry, _EdgeTable] = {}
        self.verify_repairs = verify_repairs

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str, node: object) -> None:
        if name in self.nodes:
            raise ValueError(f"broker {name!r} already exists")
        self.nodes[name] = node
        self._edges[name] = set()

    def connect(self, first: str, second: str, propagate: bool = True) -> None:
        """Join two brokers with a bidirectional overlay link.

        The overlay must remain acyclic; connecting two brokers already
        joined by a path raises ``ValueError``.

        The edge-merge advertisement is canonical: each side's live
        subscriptions cross into the other side with issue-order-aware
        pruning (later-issued routes they cover are evicted), so the
        merged tables equal a fresh build with no rebuild pass.  With no
        live subscriptions at all — topologies are usually wired before
        anything subscribes — the component walk is skipped outright
        (counted in ``overlay.adverts_skipped``), and a join side homing
        no subscriptions skips its advertisement direction the same way.

        With ``propagate=False`` only the edge structure is added — for
        callers that canonicalize with :meth:`reroute_component`
        themselves (the retained verification path).
        """
        if first not in self.nodes or second not in self.nodes:
            raise KeyError("both brokers must exist before connecting them")
        if first == second:
            raise ValueError("cannot connect a broker to itself")
        if self.path_exists(first, second):
            raise ValueError("overlay must remain acyclic (path already exists)")
        # The components being joined, captured before the edge exists:
        # each side's live subscriptions must be advertised *into the
        # other side only* — brokers on a subscription's own side already
        # hold its routes, so re-walking them would just inflate hop
        # stats — and subscriptions homed in some *third* component
        # (possible mid-churn, with several links down at once) have no
        # path to either side and must not be advertised at all.
        first_side: Optional[Set[str]] = None
        second_side: Optional[Set[str]] = None
        if propagate and self._home_of:
            first_side = self._component(first)
            second_side = self._component(second)
        self._edges[first].add(second)
        self._edges[second].add(first)
        self.nodes[first].add_neighbour(second)
        self.nodes[second].add_neighbour(first)
        if not propagate:
            return
        if first_side is None or second_side is None:
            self.metrics.counter("overlay.adverts_skipped").increment()
            return
        walks: List[Tuple[str, Subscription, Tuple[str, str]]] = []
        per_side = {first: 0, second: 0}
        for home, subscription in list(self._home_of.values()):
            if home in first_side:
                per_side[first] += 1
                walks.append((home, subscription, (first, second)))
            elif home in second_side:
                per_side[second] += 1
                walks.append((home, subscription, (second, first)))
        for side in (first, second):
            if per_side[side] == 0:
                # One side of the join homes nothing: that whole
                # advertisement direction is skipped.
                self.metrics.counter("overlay.adverts_skipped").increment()
        for home, subscription, via in walks:
            self._propagate(home, subscription, via=via)
        self._check_canonical("connect")

    def disconnect(self, first: str, second: str) -> bool:
        """Remove the overlay link between two brokers and repair routes.

        The overlay splits into two components.  Repair is *delta*: using
        the reverse route index, only routes whose subscription is homed
        across the cut from the entry's node are purged, and only the
        recorded prune victims of those purged covers are re-admitted —
        ending in exactly the state a fabric freshly built on the
        shrunken topology would hold (cross-checked by the convergence
        oracle and, with :attr:`verify_repairs`, on every call).

        Returns ``False`` when no such link exists.
        """
        if second not in self._edges.get(first, ()):
            return False
        self._edges[first].discard(second)
        self._edges[second].discard(first)
        self.nodes[first].remove_neighbour(second)
        self.nodes[second].remove_neighbour(first)
        self.metrics.counter("overlay.links_removed").increment()
        # The two directed positions on the removed link are gone outright.
        self._drop_edge_state((first, second))
        self._drop_edge_state((second, first))
        self._delta_split_repair(second)
        self.metrics.counter("overlay.route_repairs").increment()
        self._check_canonical("disconnect")
        return True

    def _delta_split_repair(self, far_start: str) -> None:
        """Purge routing state that crossed a just-removed cut and
        re-admit the pruned victims of the purged covers."""
        far = self._component(far_start)
        purged = 0
        pending: Dict[RouteEntry, Set[str]] = {}
        for subscription_id, (home, _sub) in list(self._home_of.items()):
            home_far = home in far
            routes = self._routes.get(subscription_id)
            if routes:
                crossed = [e for e in routes if (e[0] in far) != home_far]
                for edge in crossed:
                    victims = self._deselect(edge, subscription_id, collect_victims=True)
                    purged += 1
                    if victims:
                        pending.setdefault(edge, set()).update(victims)
            prunes = self._pruned_at.get(subscription_id)
            if prunes:
                for edge in [e for e in prunes if (e[0] in far) != home_far]:
                    self._clear_prune(edge, subscription_id)
        if purged:
            self.metrics.counter("overlay.routes_purged").increment(purged)
        for edge, victims in pending.items():
            node_far = edge[0] in far
            self._readmit(
                edge,
                victims,
                candidate=lambda vid, nf=node_far: (
                    (self._home_of[vid][0] in far) == nf
                ),
            )

    def remove_node(self, name: str) -> None:
        """Permanently remove a broker: links, routes, and homed state.

        Subscriptions homed at the broker are retracted first (with
        covering repair for their prune victims), then each link is torn
        down with delta repair; use link removal alone to model a
        *temporary* outage where the homed subscription set should
        survive for later re-advertisement.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown broker {name!r}")
        for subscription_id, (home, _sub) in list(self._home_of.items()):
            if home == name:
                self._retract(subscription_id, force=True)
        for client, home in list(self._client_home.items()):
            if home == name:
                del self._client_home[client]
        for neighbour in list(self._edges[name]):
            self.disconnect(name, neighbour)
        del self._edges[name]
        del self.nodes[name]

    def reroute_component(self, start: str) -> None:
        """Rebuild the routing tables of ``start``'s component from scratch.

        Clears every member's per-neighbour tables and re-propagates each
        live subscription homed inside the component in issue order.
        Delta repair makes this unnecessary on the hot paths; it remains
        the from-scratch *verification path* the incremental results are
        held equal to (and the fallback for callers that restructure
        topology behind the fabric's back).
        """
        component = self._component(start)
        for name in component:
            node = self.nodes[name]
            for neighbour in list(node.remote_engines):
                self._drop_edge_state((name, neighbour))
                node.clear_remote(neighbour)
        for home, subscription in list(self._home_of.values()):
            if home in component:
                self._propagate(home, subscription)
        self.metrics.counter("overlay.route_repairs").increment()

    def path_exists(self, start: str, goal: str) -> bool:
        return goal in self._component(start)

    def _component(self, start: str) -> Set[str]:
        """All brokers reachable from ``start`` over current edges."""
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour in self._edges[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def neighbours(self, broker_name: str) -> Set[str]:
        return set(self._edges[broker_name])

    def node_names(self) -> List[str]:
        return sorted(self.nodes)

    # -- client attachment ---------------------------------------------------

    def attach_client(self, client: str, broker_name: str) -> None:
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        self._client_home[client] = broker_name

    def home_broker(self, client: str) -> Optional[str]:
        return self._client_home.get(client)

    def require_home(self, client: str) -> str:
        home = self._client_home.get(client)
        if home is None:
            raise KeyError(f"client {client!r} is not attached to a broker")
        return home

    # -- control plane: subscription propagation -----------------------------

    def subscribe_at(self, broker_name: str, subscription: Subscription) -> SubscribeOutcome:
        """Place a subscription at ``broker_name`` and propagate its route.

        Re-issuing a live subscription id first retracts the old
        definition's routing state everywhere (with covering repair), so
        the new definition starts from a clean table at the *end* of the
        issue order.
        """
        if broker_name not in self.nodes:
            raise KeyError(f"unknown broker {broker_name!r}")
        subscription_id = subscription.subscription_id
        replaced = False
        if subscription_id in self._home_of:
            # Re-issue at the same home keeps the local engine entry so the
            # node's replace-on-readd path sees a known id and does not
            # double-count subscriptions_received; a home move is a real
            # removal at the old broker plus a fresh placement at the new.
            old_home = self._home_of[subscription_id][0]
            self._retract(
                subscription_id,
                keep_local=(old_home == broker_name),
                force=True,
            )
            replaced = True
        self.nodes[broker_name].subscribe_local(subscription)
        self._home_of[subscription_id] = (broker_name, subscription)
        self._seq[subscription_id] = self._next_seq
        self._next_seq += 1
        self.metrics.counter("overlay.subscriptions").increment()
        outcome = self._propagate(broker_name, subscription)
        outcome.replaced = replaced
        self._check_canonical("subscribe")
        return outcome

    def subscribe(self, client: str, subscription: Subscription) -> SubscribeOutcome:
        """Place a subscription at the client's home broker."""
        return self.subscribe_at(self.require_home(client), subscription)

    def unsubscribe_at(self, broker_name: str, subscription_id: str) -> bool:
        """Remove a subscription homed at ``broker_name``.

        Returns ``False`` when the id is unknown or homed elsewhere (the
        caller is not its owner), mirroring the per-broker semantics of
        ``Broker.unsubscribe_local``.
        """
        homed = self._home_of.get(subscription_id)
        if homed is None or homed[0] != broker_name:
            return False
        removed = self._retract(subscription_id)
        if removed:
            self.metrics.counter("overlay.unsubscriptions").increment()
            self._check_canonical("unsubscribe")
        return removed

    def unsubscribe(self, client: str, subscription_id: str) -> bool:
        home = self._client_home.get(client)
        if home is None:
            return False
        return self.unsubscribe_at(home, subscription_id)

    def _retract(
        self, subscription_id: str, keep_local: bool = False, force: bool = False
    ) -> bool:
        """Drop a subscription and every route toward it, then repair.

        The reverse route index bounds the purge to entries that exist,
        and repair re-admits only the recorded prune victims of those
        entries — no sweep over nodes or live subscriptions.

        The failure path — the home broker's local engine no longer holds
        the id because the fabric was bypassed — is side-effect-free: no
        home-table, route or prune state changes and ``False`` returns.
        ``force`` overrides that for callers replacing or discarding the
        definition anyway (re-issue, node removal), where the old routing
        state must not linger.  ``keep_local`` leaves the home broker's
        local engine untouched (the caller is about to replace the entry
        in place).
        """
        home, _removed_sub = self._home_of[subscription_id]
        home_node = self.nodes[home]
        present = subscription_id in home_node.local_engine
        if not present and not force:
            return False
        if present and not keep_local:
            home_node.unsubscribe_local(subscription_id)
        del self._home_of[subscription_id]
        del self._seq[subscription_id]
        for edge in list(self._pruned_at.get(subscription_id, ())):
            self._clear_prune(edge, subscription_id)
        pending: Dict[RouteEntry, Set[str]] = {}
        for edge in list(self._routes.get(subscription_id, ())):
            victims = self._deselect(edge, subscription_id, collect_victims=True)
            if victims:
                pending[edge] = victims
        for edge, victims in pending.items():
            self._readmit(edge, victims)
        return present

    # -- per-edge canonical placement ----------------------------------------

    def _select(self, edge: RouteEntry, subscription: Subscription, seq: int) -> None:
        node_name, via = edge
        node = self.nodes[node_name]
        node.learn_remote(via, subscription)
        node.stats.subscriptions_forwarded += 1
        table = self._tables.get(edge)
        if table is None:
            table = self._tables[edge] = _EdgeTable()
        table.covers.add(subscription, priority=seq)
        self._routes.setdefault(subscription.subscription_id, set()).add(edge)

    def _deselect(
        self, edge: RouteEntry, subscription_id: str, collect_victims: bool = False
    ) -> Set[str]:
        """Remove a selected entry; optionally detach and return its
        recorded prune victims (for re-admission by the caller)."""
        node_name, via = edge
        self.nodes[node_name].forget_remote(via, subscription_id)
        victims: Set[str] = set()
        table = self._tables.get(edge)
        if table is not None:
            table.covers.discard(subscription_id)
            if collect_victims:
                victims = table.victims_of.pop(subscription_id, set())
                for victim in victims:
                    table.blocker_of.pop(victim, None)
        routes = self._routes.get(subscription_id)
        if routes is not None:
            routes.discard(edge)
            if not routes:
                del self._routes[subscription_id]
        return victims

    def _record_prune(self, edge: RouteEntry, victim_id: str, blocker_id: str) -> None:
        table = self._tables.get(edge)
        if table is None:
            table = self._tables[edge] = _EdgeTable()
        table.blocker_of[victim_id] = blocker_id
        table.victims_of.setdefault(blocker_id, set()).add(victim_id)
        self._pruned_at.setdefault(victim_id, set()).add(edge)

    def _clear_prune(self, edge: RouteEntry, victim_id: str) -> None:
        table = self._tables.get(edge)
        if table is not None:
            blocker = table.blocker_of.pop(victim_id, None)
            if blocker is not None:
                victims = table.victims_of.get(blocker)
                if victims is not None:
                    victims.discard(victim_id)
                    if not victims:
                        del table.victims_of[blocker]
        prunes = self._pruned_at.get(victim_id)
        if prunes is not None:
            prunes.discard(edge)
            if not prunes:
                del self._pruned_at[victim_id]

    def _drop_edge_state(self, edge: RouteEntry) -> None:
        """Forget all bookkeeping of a table position whose link is gone
        (the node-side engine is dropped by ``remove_neighbour``)."""
        table = self._tables.pop(edge, None)
        if table is None:
            return
        for subscription_id in table.covers.ids():
            routes = self._routes.get(subscription_id)
            if routes is not None:
                routes.discard(edge)
                if not routes:
                    del self._routes[subscription_id]
        for victim in table.blocker_of:
            prunes = self._pruned_at.get(victim)
            if prunes is not None:
                prunes.discard(edge)
                if not prunes:
                    del self._pruned_at[victim]

    def _place(self, edge: RouteEntry, subscription: Subscription, seq: int) -> bool:
        """The canonical greedy decision for one candidate at one edge.

        Selected iff no earlier-issued selected candidate covers it; on
        selection, later-issued entries it covers are evicted (their
        victims transfer by covering transitivity).  Returns ``True``
        when the subscription was learned at this edge.
        """
        subscription_id = subscription.subscription_id
        table = self._tables.get(edge)
        if table is None:
            table = self._tables[edge] = _EdgeTable()
        cover = table.covers.first_cover(
            subscription, before=seq, exclude=subscription_id
        )
        if cover is not None:
            self._record_prune(edge, subscription_id, cover.subscription_id)
            return False
        self._select(edge, subscription, seq)
        for booted in table.covers.covered_by(
            subscription, after=seq, exclude=subscription_id
        ):
            self._boot(edge, booted.subscription_id, subscription_id)
        return True

    def _boot(self, edge: RouteEntry, booted_id: str, cover_id: str) -> None:
        """Evict a later-issued selected entry that ``cover_id`` covers.

        The evicted entry's own recorded victims are covered by the new
        cover too (covering is transitive), so they transfer to it rather
        than being re-examined.
        """
        inherited = self._deselect(edge, booted_id, collect_victims=True)
        for victim in inherited:
            self._record_prune(edge, victim, cover_id)
        self._record_prune(edge, booted_id, cover_id)

    def _readmit(
        self,
        edge: RouteEntry,
        victim_ids: Iterable[str],
        candidate: Optional[Callable[[str], bool]] = None,
    ) -> None:
        """Re-run the greedy decision for victims whose blocker left.

        Victims are processed in issue order so earlier re-admissions can
        block later ones exactly as a fresh build would.  ``candidate``
        filters out victims that no longer route through this edge at all
        (their home fell on the same side of a cut as the edge's node);
        their prune records are simply dropped.
        """
        readmitted = 0
        seq_of = self._seq
        for victim_id in sorted(victim_ids, key=lambda vid: seq_of.get(vid, 0)):
            if victim_id not in self._home_of or (
                candidate is not None and not candidate(victim_id)
            ):
                self._clear_prune(edge, victim_id)
                continue
            subscription = self._home_of[victim_id][1]
            seq = seq_of[victim_id]
            table = self._tables.get(edge)
            if table is None:
                table = self._tables[edge] = _EdgeTable()
            cover = table.covers.first_cover(subscription, before=seq, exclude=victim_id)
            if cover is not None:
                # Still covered — just re-point the prune record.
                table.blocker_of[victim_id] = cover.subscription_id
                table.victims_of.setdefault(cover.subscription_id, set()).add(victim_id)
                continue
            prunes = self._pruned_at.get(victim_id)
            if prunes is not None:
                prunes.discard(edge)
                if not prunes:
                    del self._pruned_at[victim_id]
            self._select(edge, subscription, seq)
            readmitted += 1
            for booted in table.covers.covered_by(
                subscription, after=seq, exclude=victim_id
            ):
                self._boot(edge, booted.subscription_id, victim_id)
        if readmitted:
            self.metrics.counter("overlay.routes_readmitted").increment(readmitted)

    def _propagate(
        self,
        origin: str,
        subscription: Subscription,
        via: Optional[Tuple[str, str]] = None,
    ) -> SubscribeOutcome:
        """Breadth-first propagation: each broker records which neighbour
        leads back toward the subscriber, pruned by covering relations
        through the per-edge canonical placement.

        With ``via=(from_broker, to_broker)`` the walk starts across that
        single edge instead of fanning out from ``origin`` — used when a
        new link joins two components and routes must be advertised into
        the far side only.
        """
        outcome = SubscribeOutcome(
            subscription_id=subscription.subscription_id, home_broker=origin
        )
        seq = self._seq[subscription.subscription_id]
        if via is None:
            visited = {origin}
            queue = deque((origin, neighbour) for neighbour in self._edges[origin])
        else:
            from_broker, to_broker = via
            visited = {from_broker}
            queue = deque([(from_broker, to_broker)])
        while queue:
            from_broker, to_broker = queue.popleft()
            if to_broker in visited:
                continue
            visited.add(to_broker)
            if self._place((to_broker, from_broker), subscription, seq):
                outcome.hops += 1
                self.metrics.counter("overlay.subscription_hops").increment()
            else:
                outcome.pruned += 1
                self.metrics.counter("overlay.subscription_pruned").increment()
            for neighbour in self._edges[to_broker]:
                if neighbour not in visited:
                    queue.append((to_broker, neighbour))
        return outcome

    # -- data plane decision --------------------------------------------------

    def next_hops(
        self,
        broker_name: str,
        event: Event,
        came_from: Optional[str] = None,
        flood: bool = False,
    ) -> List[str]:
        """Neighbours the event must be forwarded to from ``broker_name``.

        With ``flood=True`` every neighbour except the arrival link is a
        next hop (the baseline); otherwise only neighbours whose routing
        table holds at least one subscription matching the event.
        """
        if flood:
            return sorted(n for n in self._edges[broker_name] if n != came_from)
        return self.nodes[broker_name].interested_neighbours(event, exclude=came_from)

    # -- reporting ------------------------------------------------------------

    def subscription_home(self, subscription_id: str) -> Optional[str]:
        homed = self._home_of.get(subscription_id)
        return homed[0] if homed is not None else None

    def live_subscriptions(self) -> List[Subscription]:
        return [subscription for _home, subscription in self._home_of.values()]

    def homed_subscriptions(self) -> List[Tuple[str, Subscription]]:
        """Live ``(home broker, subscription)`` pairs in issue order."""
        return list(self._home_of.values())

    def edges(self) -> List[Tuple[str, str]]:
        """Current overlay links, each reported once (sorted endpoint order)."""
        seen = set()
        for name, neighbours in self._edges.items():
            for neighbour in neighbours:
                seen.add((name, neighbour) if name < neighbour else (neighbour, name))
        return sorted(seen)

    def routing_snapshot(self) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Canonical view of all routing state, for convergence checks:
        node -> neighbour -> sorted ids of subscriptions routed via it
        (neighbours with empty tables are omitted)."""
        snapshot: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            tables = {
                neighbour: tuple(
                    sorted(s.subscription_id for s in engine.subscriptions())
                )
                for neighbour, engine in node.remote_engines.items()
                if len(engine)
            }
            if tables:
                snapshot[name] = tables
        return snapshot

    def rebuilt_snapshot(
        self, edges: Optional[Iterable[Tuple[str, str]]] = None
    ) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Routing state of a fabric built from scratch on this fabric's
        surviving topology (its current edges unless ``edges`` is given),
        subscribing the live set in its original issue order — the
        verification oracle every delta repair is held equal to."""
        fresh = RoutingFabric()
        for name in self.node_names():
            fresh.add_node(name, Broker(name))
        for first, second in self.edges() if edges is None else edges:
            fresh.connect(first, second)
        for home, subscription in self.homed_subscriptions():
            fresh.subscribe_at(home, subscription)
        return fresh.routing_snapshot()

    def _check_canonical(self, context: str) -> None:
        if not self.verify_repairs:
            return
        live = self.routing_snapshot()
        rebuilt = self.rebuilt_snapshot()
        if live != rebuilt:
            raise AssertionError(
                f"delta repair diverged from a fresh rebuild after {context}"
            )

    def total_routing_state(self) -> int:
        return sum(node.routing_table_size() for node in self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)
