"""Durable delivery: bounded dedup indexes, per-broker publish logs, replay.

Three pieces combine into exactly-once *observable* delivery through
broker crashes on redundant (cyclic) overlays:

* :class:`DedupIndex` — a TTL-bounded seen-set.  Brokers on a mesh key it
  by ``(event_id, attempt)`` to suppress the duplicate forwards that
  redundant paths necessarily produce; subscribers key it by
  ``(subscription_id, event_id)`` so redeliveries collapse to one
  observable delivery.
* :class:`DurableLog` — an append-only per-broker log of ingress
  publications (in-memory, optionally file-backed as JSON lines for the
  wire path).  Entries are marked *applied* once the owning broker has
  served them; whatever is unapplied at crash time is exactly the work a
  recovery must redo.
* :class:`DurabilityManager` — wires the log into a ``BrokerCluster``:
  publications are logged before they enter the mailbox, publishes aimed
  at a down broker are deferred instead of dropped, recoveries replay the
  unapplied suffix, and :meth:`DurabilityManager.replay_at_risk` replays
  the whole log after the churn horizon.  Replays bump the envelope
  ``attempt`` so they traverse the mesh again (broker dedup is
  attempt-scoped); the subscriber-side index then collapses the resulting
  at-least-once stream to exactly-once.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
)

from repro.pubsub.events import Event

__all__ = ["DedupIndex", "DurableLog", "LogEntry", "DurabilityManager"]


class DedupIndex:
    """A bounded seen-set: ``first_sighting(key)`` is True exactly once.

    Keys expire ``ttl`` seconds after their first sighting (lazy eviction
    off a FIFO of insertion times), and ``max_entries`` caps the resident
    set regardless of age, so the index stays O(active window) on
    unbounded streams.  A crashed broker keeps its index across the
    outage: suppressing a replayed copy it already served is always safe
    because losses are recovered by replay, never by re-forwarding.
    """

    def __init__(
        self,
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive when given")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when given")
        self.ttl = ttl
        self.max_entries = max_entries
        self._seen: Dict[Hashable, float] = {}
        self._order: Deque[Tuple[float, Hashable]] = deque()
        self.suppressed = 0

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def first_sighting(self, key: Hashable, now: float) -> bool:
        """Record ``key``; True iff it was not already in the live window.

        A repeat sighting does *not* refresh the TTL — the window is
        anchored at the first sighting, which keeps eviction a strict
        FIFO."""
        self._evict(now)
        if key in self._seen:
            self.suppressed += 1
            return False
        self._seen[key] = now
        self._order.append((now, key))
        self._trim()
        return True

    def _evict(self, now: float) -> None:
        if self.ttl is not None:
            horizon = now - self.ttl
            while self._order and self._order[0][0] <= horizon:
                stamped, key = self._order.popleft()
                if self._seen.get(key) == stamped:
                    del self._seen[key]
        self._trim()

    def _trim(self) -> None:
        if self.max_entries is None:
            return
        while len(self._seen) > self.max_entries and self._order:
            stamped, key = self._order.popleft()
            if self._seen.get(key) == stamped:
                del self._seen[key]


@dataclass
class LogEntry:
    """One logged ingress publication."""

    event: Event
    origin_broker: str
    logged_at: float
    applied: bool = False
    deferred: bool = False
    attempts: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "event_id": self.event.event_id,
            "event_type": self.event.event_type,
            "attributes": dict(self.event.attributes),
            "timestamp": self.event.timestamp,
            "origin_broker": self.origin_broker,
            "logged_at": self.logged_at,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "LogEntry":
        event = Event(
            event_type=str(payload["event_type"]),
            attributes=payload.get("attributes", {}),  # type: ignore[arg-type]
            timestamp=float(payload.get("timestamp", 0.0)),
            event_id=str(payload["event_id"]),
        )
        return cls(
            event=event,
            origin_broker=str(payload["origin_broker"]),
            logged_at=float(payload.get("logged_at", 0.0)),
        )


class DurableLog:
    """Append-only publish log for one broker.

    In-memory always; pass ``path`` to also append every record as a JSON
    line (``append``/``applied`` records), which is what the wire path
    uses to survive a SIGKILL — :meth:`load` folds a log file back into
    entry state, replaying applied-markers onto their entries.
    """

    def __init__(self, broker: str, path: Optional[str] = None) -> None:
        self.broker = broker
        self.path = path
        self.entries: List[LogEntry] = []
        self._by_id: Dict[str, LogEntry] = {}
        self._file = open(path, "a", encoding="utf-8") if path else None

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, event: Event, at: float, deferred: bool = False) -> LogEntry:
        existing = self._by_id.get(event.event_id)
        if existing is not None:
            # Re-logging the same publication (e.g. a deferred publish
            # retried while the broker is still down) keeps one entry.
            existing.deferred = existing.deferred or deferred
            return existing
        entry = LogEntry(
            event=event, origin_broker=self.broker, logged_at=at, deferred=deferred
        )
        self.entries.append(entry)
        self._by_id[event.event_id] = entry
        if self._file is not None:
            record = entry.to_json()
            record["record"] = "append"
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
        return entry

    def mark_applied(self, event_id: str) -> None:
        entry = self._by_id.get(event_id)
        if entry is None or entry.applied:
            return
        entry.applied = True
        if self._file is not None:
            self._file.write(
                json.dumps({"record": "applied", "event_id": event_id}) + "\n"
            )
            self._file.flush()

    def get(self, event_id: str) -> Optional[LogEntry]:
        return self._by_id.get(event_id)

    def unapplied(self) -> List[LogEntry]:
        return [entry for entry in self.entries if not entry.applied]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @classmethod
    def load(cls, broker: str, path: str) -> "DurableLog":
        """Rebuild entry state from a JSON-lines log file (read-only)."""
        log = cls(broker)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                if payload.get("record") == "applied":
                    log.mark_applied(str(payload["event_id"]))
                else:
                    entry = LogEntry.from_json(payload)
                    log.entries.append(entry)
                    log._by_id[entry.event.event_id] = entry
        return log


DeliveryCallback = Callable[[str, str, Event, object], None]


class DurabilityManager:
    """Exactly-once delivery harness over a :class:`BrokerCluster`.

    Attach one per cluster *before* publishing.  It owns a
    :class:`DurableLog` per broker, a subscriber-side :class:`DedupIndex`,
    and the replay policy:

    * every ingress publication is logged before it enters the mailbox;
    * publishes aimed at a crashed broker are *deferred* (logged, not
      dropped) and replayed when it recovers;
    * on recovery the broker's unapplied suffix is republished with a
      bumped ``attempt``;
    * :meth:`replay_at_risk` (call after the churn horizon) republishes
      the whole log — brute-force at-least-once that the subscriber-side
      index collapses back to exactly-once.

    Consumers read the deduped stream via :meth:`on_delivery`.
    """

    def __init__(
        self,
        cluster,
        client_dedup_ttl: Optional[float] = None,
        log_dir: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.log_dir = log_dir
        self.logs: Dict[str, DurableLog] = {}
        self.client_seen = DedupIndex(ttl=client_dedup_ttl)
        self._callbacks: List[DeliveryCallback] = []
        self.faults_seen = False
        self.first_fault_at: Optional[float] = None
        self.events_logged = 0
        self.events_replayed = 0
        self.publishes_deferred = 0
        self.client_duplicates_suppressed = 0
        self.deliveries = 0
        cluster.attach_durability(self)
        cluster.on_lifecycle(self._on_lifecycle)
        cluster.on_link_event(self._on_link_event)
        cluster.on_delivery(self.deliver)

    def on_delivery(self, callback: DeliveryCallback) -> None:
        """Register a consumer of the deduped (exactly-once) stream."""
        self._callbacks.append(callback)

    # -- plumbing ----------------------------------------------------------

    def log_for(self, broker: str) -> DurableLog:
        log = self.logs.get(broker)
        if log is None:
            path = None
            if self.log_dir is not None:
                path = f"{self.log_dir}/{broker}.events.log"
            log = DurableLog(broker, path=path)
            self.logs[broker] = log
        return log

    def _metric(self, name: str):
        return self.cluster.metrics.counter(name)

    # -- hooks called by the cluster --------------------------------------

    def record_publish(self, broker: str, event: Event, at: float) -> LogEntry:
        entry = self.log_for(broker).append(event, at)
        self.events_logged += 1
        self._metric("durable.events_logged").increment()
        return entry

    def record_deferred(self, broker: str, event: Event, at: float) -> LogEntry:
        entry = self.log_for(broker).append(event, at, deferred=True)
        self.publishes_deferred += 1
        self._metric("durable.publishes_deferred").increment()
        return entry

    def mark_applied(self, broker: str, event_id: str) -> None:
        self.log_for(broker).mark_applied(event_id)

    def deliver(self, broker: str, subscriber: str, event: Event, subscription) -> None:
        """Subscriber-side dedup: collapse redeliveries to one callback."""
        key = (subscription.subscription_id, event.event_id)
        if not self.client_seen.first_sighting(key, self.cluster.sim.now):
            self.client_duplicates_suppressed += 1
            self._metric("durable.client_duplicates_suppressed").increment()
            return
        self.deliveries += 1
        for callback in self._callbacks:
            callback(broker, subscriber, event, subscription)

    # -- fault awareness ---------------------------------------------------

    def _note_fault(self, at: float) -> None:
        self.faults_seen = True
        if self.first_fault_at is None:
            self.first_fault_at = at

    def _on_lifecycle(self, kind: str, broker: str, at: float) -> None:
        if kind == "crashed":
            self._note_fault(at)
        elif kind == "recovered":
            self.replay_unapplied(broker)

    def _on_link_event(self, kind: str, first: str, second: str, at: float) -> None:
        if kind == "failed":
            self._note_fault(at)

    # -- replay ------------------------------------------------------------

    def _replay(self, entry: LogEntry) -> None:
        entry.attempts += 1
        self.events_replayed += 1
        self._metric("durable.events_replayed").increment()
        self.cluster.publish(
            entry.origin_broker, entry.event, attempt=entry.attempts
        )

    def replay_unapplied(self, broker: str) -> int:
        """At-least-once redelivery of one broker's unapplied suffix
        (crash-lost in-service work plus deferred publishes)."""
        replayed = 0
        for entry in self.log_for(broker).unapplied():
            self._replay(entry)
            replayed += 1
        return replayed

    def replay_at_risk(self, since: Optional[float] = None) -> int:
        """Replay every logged publication (optionally only those logged
        at/after ``since``) across all brokers.  Call after the fault
        horizon: detection-gap losses — events that died at a crashed
        broker's doorstep before failover engaged — have no per-broker
        marker, so the safe oracle move is to replay the whole window and
        let subscriber dedup discard the overwhelmingly-duplicate
        stream."""
        if not self.faults_seen:
            return 0
        replayed = 0
        for broker in sorted(self.logs):
            for entry in list(self.logs[broker].entries):
                if since is not None and entry.logged_at < since:
                    continue
                self._replay(entry)
                replayed += 1
        return replayed

    def close(self) -> None:
        for log in self.logs.values():
            log.close()
