"""Batched event flow: publish event batches through a matching engine.

Publishing one event at a time pays the full probe cost per event.  A
:class:`BatchPublisher` hands whole batches to the engine's ``match_batch``
(single or sharded — per-shard hits are merged by the engine), records
throughput/delivery metrics into a :class:`~repro.sim.metrics.MetricsRegistry`,
and fans deliveries out to registered callbacks.  Batching pays off when
events share attribute values (topic feeds, tickers): the engine computes
each distinct probe once per batch instead of once per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.pubsub.broker import DeliveryCallback
from repro.pubsub.events import Event
from repro.pubsub.matching import BatchMatchCache
from repro.pubsub.subscriptions import Subscription
from repro.sim.metrics import MetricsRegistry


@dataclass
class BatchReport:
    """Outcome of publishing one batch."""

    events: int
    deliveries: int
    matches: List[List[Subscription]] = field(default_factory=list)

    @property
    def matches_per_event(self) -> float:
        return self.deliveries / self.events if self.events else 0.0


class BatchPublisher:
    """Match event batches against an engine and deliver merged hits.

    ``engine`` may be a :class:`~repro.pubsub.matching.MatchingEngine`, a
    :class:`~repro.cluster.sharded.ShardedMatchingEngine`, or anything
    exposing ``match_batch`` (falling back to per-event ``match``).
    """

    def __init__(self, engine, metrics: Optional[MetricsRegistry] = None) -> None:
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._delivery_callbacks: List[DeliveryCallback] = []
        # Cross-batch probe/result tables for engines that support cached
        # batched matching (plain MatchingEngine); self-invalidates on
        # engine mutation, so a stream of batches over a stable
        # subscription population amortizes probes across the stream.
        self._match_cache = BatchMatchCache()

    def on_delivery(self, callback: DeliveryCallback) -> None:
        """Register a callback invoked per delivery
        (subscriber name, event, matching subscription)."""
        self._delivery_callbacks.append(callback)

    def publish_batch(self, events: Sequence[Event]) -> BatchReport:
        """Publish a batch; returns per-event matches plus totals."""
        events = list(events)
        match_cached = getattr(self.engine, "match_batch_cached", None)
        match_batch = getattr(self.engine, "match_batch", None)
        if match_cached is not None:
            matches = match_cached(events, self._match_cache)
        elif match_batch is not None:
            matches = match_batch(events)
        else:
            matches = [self.engine.match(event) for event in events]
        deliveries = sum(len(row) for row in matches)
        self.metrics.counter("batch.batches").increment()
        self.metrics.counter("batch.events").increment(len(events))
        self.metrics.counter("batch.deliveries").increment(deliveries)
        self.metrics.histogram("batch.size").observe(len(events))
        if events:
            self.metrics.histogram("batch.matches_per_event").observe(
                deliveries / len(events)
            )
        if self._delivery_callbacks:
            for event, row in zip(events, matches):
                for subscription in row:
                    for callback in self._delivery_callbacks:
                        callback(subscription.subscriber, event, subscription)
        return BatchReport(events=len(events), deliveries=deliveries, matches=matches)

    def publish_stream(
        self, events: Sequence[Event], batch_size: int
    ) -> List[BatchReport]:
        """Split a stream into fixed-size batches and publish each."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        events = list(events)
        return [
            self.publish_batch(events[start : start + batch_size])
            for start in range(0, len(events), batch_size)
        ]
