"""Shard placement policies for :class:`~repro.cluster.sharded.ShardedMatchingEngine`.

A placement policy decides which shard owns a subscription.  Correctness
never depends on the policy — the shards partition the subscription set,
so any assignment yields identical match results — but placement governs
load balance and, for attribute-range placement, locality (subscriptions
with nearby numeric constraints land on the same shard).

Policies expose two operations:

``shard_for(subscription, num_shards)``
    The shard index in ``[0, num_shards)`` the subscription belongs on.

``refit(subscriptions, num_shards)``
    Re-derive internal placement state (e.g. range split points) from the
    currently live subscription population.  Returns True when the state
    changed; the sharded engine then migrates every subscription whose
    assignment moved.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence

# The same "indexable number" rule the matching engine's range indexes use
# (bool included, NaN excluded), so placement keys agree with what the
# shards can range-index.
from repro.pubsub.matching import _is_number
from repro.pubsub.subscriptions import Operator, Subscription
from repro.sim.rng import stable_hash

# Operators whose (numeric) value anchors a subscription on the attribute
# axis for range placement.
_KEY_OPERATORS = (Operator.EQ, Operator.GE, Operator.GT, Operator.LE, Operator.LT)


class HashPlacement:
    """Stateless uniform placement by stable hash of the subscription id.

    Uses the process-independent FNV-1a hash so shard assignments are
    reproducible across runs and machines (Python's ``hash`` on strings is
    salted per process).
    """

    name = "hash"

    def shard_for(self, subscription: Subscription, num_shards: int) -> int:
        return stable_hash(subscription.subscription_id) % num_shards

    def refit(self, subscriptions: Sequence[Subscription], num_shards: int) -> bool:
        # Hash placement is balanced in expectation; there is nothing to
        # refit, so rebalancing under it is always a no-op.
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashPlacement()"


class AttributeRangePlacement:
    """Range placement on one numeric attribute with hash fallback.

    Subscriptions carrying a numeric constraint on ``attribute`` are keyed
    by that constraint's value and routed through a sorted boundary list
    (``num_shards - 1`` split points); subscriptions without a usable key
    fall back to ``fallback`` (hash placement by default).

    Freshly constructed with no boundaries, every keyed subscription lands
    on shard 0 — deliberately skewed until the first :meth:`refit`
    recomputes the boundaries as quantiles of the observed keys, which is
    exactly the drain/refill rebalance the sharded engine performs when
    load skews.
    """

    name = "range"

    def __init__(
        self,
        attribute: str,
        boundaries: Sequence[float] = (),
        fallback: Optional[HashPlacement] = None,
    ) -> None:
        if not attribute:
            raise ValueError("placement attribute cannot be empty")
        self.attribute = attribute
        self.boundaries: List[float] = sorted(boundaries)
        self.fallback = fallback if fallback is not None else HashPlacement()

    def placement_key(self, subscription: Subscription) -> Optional[float]:
        """The numeric anchor of a subscription on the placement axis."""
        for predicate in subscription.predicates:
            if predicate.attribute != self.attribute:
                continue
            value = predicate.value
            if predicate.operator in _KEY_OPERATORS and _is_number(value):
                return float(value)  # type: ignore[arg-type]
        return None

    def shard_for(self, subscription: Subscription, num_shards: int) -> int:
        key = self.placement_key(subscription)
        if key is None:
            return self.fallback.shard_for(subscription, num_shards)
        # Boundaries may be stale (longer than needed) after a shard-count
        # change; clamp into range.
        return min(bisect_right(self.boundaries, key), num_shards - 1)

    def refit(self, subscriptions: Sequence[Subscription], num_shards: int) -> bool:
        keys = sorted(
            key
            for key in (self.placement_key(s) for s in subscriptions)
            if key is not None
        )
        if len(keys) < num_shards:
            return False
        new_boundaries = [
            keys[(index * len(keys)) // num_shards] for index in range(1, num_shards)
        ]
        if new_boundaries == self.boundaries:
            return False
        self.boundaries = new_boundaries
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttributeRangePlacement({self.attribute!r}, "
            f"boundaries={self.boundaries!r})"
        )
