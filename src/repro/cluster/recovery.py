"""Self-healing: heartbeat failure detection and routing convergence.

The fault injector (:mod:`repro.cluster.faults`) only breaks things at
the physical layer — processes die, links stop passing messages.  This
module is the control loop that notices and heals:

* :class:`FailureDetector` runs a periodic process on the cluster's sim
  clock.  Every ``period`` seconds each live broker sends a ``heartbeat``
  message to each intended neighbour through the simulated network (so
  heartbeats pay link latency and die on downed links or dead peers);
  each broker tracks when it last heard every neighbour.  Silence beyond
  ``timeout`` raises a *suspicion*: the overlay link is torn down via
  :meth:`BrokerCluster.fail_link`, which repairs routing state on both
  sides (covering-aware, see :meth:`RoutingFabric.disconnect`).  The
  first heartbeat to cross a torn-down link restores it
  (:meth:`BrokerCluster.restore_link`) and re-advertises the surviving
  subscription set, so routing converges back without a coordinator.

  Detection is *unreliable by design*: with ``timeout`` close to
  ``period`` plus link latency, a slow heartbeat can trigger a false
  suspicion against a healthy peer — the detector counts these
  (``detector.false_suspicions``, judged omnisciently from sim state)
  and the subsequent heartbeat heals the flap.  Tuning guidance lives in
  PERFORMANCE.md ("Failure & churn").

* :func:`rebuilt_routing_snapshot` / :func:`routing_converged` are the
  convergence oracle: the live fabric's routing state must equal that of
  a fabric freshly built on the surviving topology with the same
  subscription issue order.  The C2 experiment's ``--verify`` mode and
  the recovery property suite both assert through them.  (Since the
  control plane went incremental the oracle lives on the fabric itself —
  :meth:`RoutingFabric.rebuilt_snapshot` — and these remain the public
  convergence-checking entry points over it.)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.cluster.routing import RoutingFabric


class FailureDetector:
    """Per-neighbour heartbeat monitoring driving link failover/failback.

    One detector instance serves the whole cluster (it is the cluster's
    single ``_detector``); conceptually each broker monitors only its own
    intended neighbours, and all state is keyed ``(listener, peer)``.
    """

    def __init__(
        self,
        cluster,
        period: float = 0.05,
        timeout: float = 0.2,
        heartbeat_bytes: int = 32,
    ) -> None:
        if period <= 0:
            raise ValueError("heartbeat period must be positive")
        if timeout <= period:
            raise ValueError("timeout must exceed the heartbeat period")
        self.cluster = cluster
        self.period = period
        self.timeout = timeout
        self.heartbeat_bytes = heartbeat_bytes
        self._last_heard: Dict[Tuple[str, str], float] = {}
        self._running = False
        self._tick_handle = None
        self._until: Optional[float] = None
        self.last_restore_time: Optional[float] = None
        self.last_suspicion_time: Optional[float] = None
        # One detector owns a cluster's heartbeat receipts; silently
        # replacing a *running* one would starve its _last_heard map and
        # make it tear down every healthy link after `timeout`.  A stopped
        # predecessor is fully detached (its lifecycle hook removed) so
        # cycling detectors does not accumulate dead observers.
        previous = cluster._detector
        if previous is not None:
            if previous._running:
                raise ValueError(
                    "cluster already has a running failure detector; stop() it first"
                )
            try:
                cluster._lifecycle_callbacks.remove(previous._on_lifecycle)
            except ValueError:
                pass
        cluster._detector = self
        cluster.on_lifecycle(self._on_lifecycle)

    # -- lifecycle ---------------------------------------------------------

    def start(self, until: Optional[float] = None) -> None:
        """Begin heartbeating at the current sim time.

        ``until`` bounds the periodic process so a run can drain; without
        it the detector ticks forever and the caller must use
        ``cluster.run(until=...)``.
        """
        if self._running:
            raise RuntimeError("failure detector already running")
        self._running = True
        self._until = until
        now = self.cluster.sim.now
        for listener, peer in self._directed_pairs():
            self._last_heard[(listener, peer)] = now
        self._tick_handle = self.cluster.sim.schedule_in(
            self.period, self._tick, label="detector.tick"
        )

    def stop(self) -> None:
        self._running = False
        # Cancel the pending tick so a later start() cannot leave two
        # concurrent tick chains heartbeating in parallel.
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def _directed_pairs(self) -> Iterable[Tuple[str, str]]:
        for pair in self.cluster.intended_links:
            first, second = sorted(pair)
            yield first, second
            yield second, first

    def _on_lifecycle(self, kind: str, broker_name: str, time: float) -> None:
        if kind != "recovered":
            return
        # The restarted broker's notion of "recently heard" must not be
        # its pre-crash memory, or it would instantly suspect everyone.
        for listener, peer in self._directed_pairs():
            if listener == broker_name:
                self._last_heard[(listener, peer)] = time

    # -- the periodic process ----------------------------------------------

    def _tick(self, _engine) -> None:
        if not self._running:
            return
        cluster = self.cluster
        now = cluster.sim.now
        for listener, peer in self._directed_pairs():
            # Heartbeat from `listener` toward `peer` (every broker is both
            # a sender and a listener; this loop visits each direction).
            sender = cluster.brokers[listener]
            if sender.up:
                cluster.network.send(
                    listener,
                    peer,
                    kind="heartbeat",
                    payload=None,
                    size_bytes=self.heartbeat_bytes,
                )
                cluster.metrics.counter("detector.heartbeats_sent").increment()
            # Links connected after start() default to "heard just now".
            last = self._last_heard.setdefault((listener, peer), now)
            if (
                sender.up
                and cluster.overlay_link_is_up(listener, peer)
                and now - last > self.timeout
            ):
                self._suspect(listener, peer, now)
        if self._until is None or now + self.period <= self._until:
            self._tick_handle = cluster.sim.schedule_in(
                self.period, self._tick, label="detector.tick"
            )
        else:
            self._running = False
            self._tick_handle = None

    def _suspect(self, listener: str, peer: str, now: float) -> None:
        cluster = self.cluster
        cluster.metrics.counter("detector.suspicions").increment()
        self.last_suspicion_time = now
        peer_alive = cluster.brokers[peer].up
        path_clear = cluster.network.link_is_up(peer, listener)
        if peer_alive and path_clear:
            # Omniscient accounting: the peer was fine, we were just slow.
            cluster.metrics.counter("detector.false_suspicions").increment()
        tracer = getattr(cluster, "tracer", None)
        if tracer is not None:
            tracer.note_anomaly(f"suspicion:{listener}->{peer}", now)
        cluster.fail_link(listener, peer)

    # -- heartbeat receipt (called by the broker port) -----------------------

    def heartbeat_received(self, listener: str, peer: str) -> None:
        cluster = self.cluster
        now = cluster.sim.now
        self._last_heard[(listener, peer)] = now
        if not cluster.overlay_link_is_up(listener, peer):
            if cluster.restore_link(listener, peer):
                cluster.metrics.counter("detector.link_restores").increment()
                self.last_restore_time = now


# -- convergence oracle ----------------------------------------------------


def rebuilt_routing_snapshot(
    fabric: RoutingFabric,
    edges: Optional[Iterable[Tuple[str, str]]] = None,
) -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """Routing state of a fabric built from scratch on ``fabric``'s
    surviving topology (its current edges unless ``edges`` is given),
    subscribing the live set in its original issue order."""
    return fabric.rebuilt_snapshot(edges)


def routing_converged(
    fabric: RoutingFabric,
    edges: Optional[Iterable[Tuple[str, str]]] = None,
) -> bool:
    """True when the live fabric holds exactly the routing state a fresh
    build would — no stale routes survived, no repairs were missed."""
    return fabric.routing_snapshot() == rebuilt_routing_snapshot(fabric, edges)
