"""Cluster layer: sharded matching and batched event flow.

Scales the single-process pub/sub substrate along two axes the ROADMAP
names:

* :class:`~repro.cluster.sharded.ShardedMatchingEngine` partitions
  subscriptions across N inner matching engines under a placement policy
  (:class:`~repro.cluster.placement.HashPlacement` or
  :class:`~repro.cluster.placement.AttributeRangePlacement`), with
  drain/refill rebalancing when shard load skews;
* :class:`~repro.cluster.batch.BatchPublisher` pushes event *batches*
  through any engine's ``match_batch`` and merges per-shard hits;
* :class:`~repro.cluster.broker_cluster.BrokerCluster` models brokers as
  mailbox-driven processes on the discrete-event simulator, yielding
  queue-delay and throughput metrics for the batching/sharding sweeps in
  ``repro.experiments.cluster_scale``.
"""

from repro.cluster.batch import BatchPublisher, BatchReport
from repro.cluster.broker_cluster import BrokerCluster, BrokerProcess, BrokerProcessStats
from repro.cluster.placement import AttributeRangePlacement, HashPlacement
from repro.cluster.sharded import ShardedMatchingEngine

__all__ = [
    "AttributeRangePlacement",
    "BatchPublisher",
    "BatchReport",
    "BrokerCluster",
    "BrokerProcess",
    "BrokerProcessStats",
    "HashPlacement",
    "ShardedMatchingEngine",
]
