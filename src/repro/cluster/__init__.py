"""Cluster layer: the distributed message plane.

Scales the single-process pub/sub substrate along the axes the ROADMAP
names:

* :class:`~repro.cluster.sharded.ShardedMatchingEngine` partitions
  subscriptions across N inner matching engines under a placement policy
  (:class:`~repro.cluster.placement.HashPlacement` or
  :class:`~repro.cluster.placement.AttributeRangePlacement`), with
  drain/refill rebalancing when shard load skews;
* :mod:`~repro.cluster.workers` makes shard execution pluggable:
  :class:`~repro.cluster.workers.SerialExecutor` runs shards inline,
  :class:`~repro.cluster.workers.MultiprocessExecutor` fans chunked match
  batches out to worker processes;
* :class:`~repro.cluster.routing.RoutingFabric` is the transport-agnostic
  routing core (subscription propagation with covering pruning and
  unsubscription repair, plus next-hop decisions), shared by the
  synchronous :class:`~repro.pubsub.router.BrokerOverlay` and the
  sim-clock cluster;
* :class:`~repro.cluster.batch.BatchPublisher` pushes event *batches*
  through any engine's ``match_batch`` and merges per-shard hits;
* :class:`~repro.cluster.broker_cluster.BrokerCluster` models brokers as
  mailbox-driven processes on the discrete-event simulator — routed: events
  forward between brokers as latency-bearing network messages through the
  same mailbox machinery, yielding queue-delay, hop-count and end-to-end
  delivery-delay metrics for ``repro.experiments.cluster_scale``;
* :mod:`~repro.cluster.faults` + :mod:`~repro.cluster.recovery` are the
  fault-tolerance subsystem: scheduled broker crashes/restarts and link
  churn (:class:`~repro.cluster.faults.FaultPlan` /
  :class:`~repro.cluster.faults.FaultInjector`), heartbeat-driven failure
  detection with covering-aware route repair and rejoin re-advertisement
  (:class:`~repro.cluster.recovery.FailureDetector`), and the routing
  convergence oracle used by ``repro.experiments.cluster_churn``;
* :mod:`~repro.cluster.replication` + :mod:`~repro.cluster.durable` are
  the durability subsystem (PR 10): cyclic/redundant overlays (ring and
  mesh topologies with per-broker
  :class:`~repro.cluster.durable.DedupIndex` duplicate suppression),
  :class:`~repro.cluster.replication.ReplicationManager` keeping R
  replica homes per subscription with detector-driven failover/failback
  through the ordinary control plane, and
  :class:`~repro.cluster.durable.DurabilityManager` (per-broker
  :class:`~repro.cluster.durable.DurableLog`, deferred publishes, crash
  replay, subscriber-side dedup) — exactly-once observable delivery
  through crashes, asserted by C2's ``--mesh --replicate --replay``
  oracle.
"""

from repro.cluster.batch import BatchPublisher, BatchReport
from repro.cluster.broker_cluster import (
    BrokerCluster,
    BrokerProcess,
    BrokerProcessStats,
    EventEnvelope,
    build_cluster_topology,
    topology_edges,
    topology_is_cyclic,
)
from repro.cluster.durable import DedupIndex, DurabilityManager, DurableLog
from repro.cluster.faults import FaultAction, FaultInjector, FaultPlan
from repro.cluster.replication import ReplicatedSubscription, ReplicationManager
from repro.cluster.placement import AttributeRangePlacement, HashPlacement
from repro.cluster.recovery import (
    FailureDetector,
    rebuilt_routing_snapshot,
    routing_converged,
)
from repro.cluster.routing import RoutingFabric, SubscribeOutcome
from repro.cluster.sharded import ShardedMatchingEngine
from repro.cluster.workers import (
    MultiprocessExecutor,
    SerialExecutor,
    ShardView,
    ThreadExecutor,
    make_executor,
    sharded_engine_factory,
)

__all__ = [
    "AttributeRangePlacement",
    "BatchPublisher",
    "BatchReport",
    "BrokerCluster",
    "BrokerProcess",
    "BrokerProcessStats",
    "DedupIndex",
    "DurabilityManager",
    "DurableLog",
    "EventEnvelope",
    "FailureDetector",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "HashPlacement",
    "MultiprocessExecutor",
    "ReplicatedSubscription",
    "ReplicationManager",
    "RoutingFabric",
    "SerialExecutor",
    "ShardView",
    "ShardedMatchingEngine",
    "SubscribeOutcome",
    "ThreadExecutor",
    "build_cluster_topology",
    "make_executor",
    "rebuilt_routing_snapshot",
    "routing_converged",
    "sharded_engine_factory",
    "topology_edges",
    "topology_is_cyclic",
]
