"""Replicated subscription state: primary + R replicas with failover.

A :class:`ReplicationManager` homes every managed subscription on a
*primary* broker plus ``replication_factor`` replicas chosen from the
overlay topology (BFS-nearest to the primary, so failover routes stay
short).  It watches the cluster's overlay link events — the
detector-driven signal: a :class:`~repro.cluster.recovery.FailureDetector`
tears a crashed broker's links down one by one as heartbeats miss — and
considers a broker *dead* once every one of its intended links is down.

On death, each subscription acting at the dead broker **fails over**: it
is retracted there and re-issued at the first live broker in its
``[primary, *replicas]`` candidate list, all through the ordinary
control-plane machinery (delta repair, covering, audit), so the resulting
tables are byte-identical to a fresh build (``rebuilt_snapshot()``) and
cross-checkable with ``verify_repairs``.  On recovery (the first restored
link) the subscription **fails back** to its primary the same way.
Deliveries made at a replica carry the same subscription identity, so the
durable layer's subscriber-side dedup keeps the stream exactly-once
across the move.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Set

from repro.pubsub.subscriptions import Subscription

__all__ = ["ReplicatedSubscription", "ReplicationManager"]


@dataclass
class ReplicatedSubscription:
    """Placement record for one managed subscription."""

    subscription: Subscription
    primary: str
    replicas: List[str]
    acting: str
    moves: int = 0

    @property
    def candidates(self) -> List[str]:
        return [self.primary, *self.replicas]


class ReplicationManager:
    """Failover/failback of subscription homes over a ``BrokerCluster``.

    Place subscriptions through :meth:`subscribe` (instead of
    ``cluster.subscribe``) to put them under management.  Liveness is
    judged purely from overlay link state (``cluster.overlay_link_is_up``)
    so the manager reacts exactly when the routing layer learns of a
    failure — never earlier than a real detector could.
    """

    def __init__(self, cluster, replication_factor: int = 1) -> None:
        if replication_factor < 0:
            raise ValueError("replication_factor must be non-negative")
        self.cluster = cluster
        self.replication_factor = replication_factor
        self._records: Dict[str, ReplicatedSubscription] = {}
        self._dead: Set[str] = set()
        self.failovers = 0
        self.failbacks = 0
        cluster.on_link_event(self._on_link_event)

    # -- placement ---------------------------------------------------------

    def _neighbours(self, broker: str) -> List[str]:
        """Intended overlay neighbours (sorted for determinism)."""
        found = set()
        for pair in self.cluster.intended_links:
            if broker in pair:
                (other,) = pair - {broker}
                found.add(other)
        return sorted(found)

    def replicas_for(self, primary: str) -> List[str]:
        """BFS-nearest ``replication_factor`` brokers from ``primary``
        over the intended topology (ties broken by name)."""
        chosen: List[str] = []
        visited = {primary}
        frontier: Deque[str] = deque([primary])
        while frontier and len(chosen) < self.replication_factor:
            node = frontier.popleft()
            for neighbour in self._neighbours(node):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                chosen.append(neighbour)
                if len(chosen) == self.replication_factor:
                    break
                frontier.append(neighbour)
        return chosen

    def subscribe(
        self, primary: str, subscription: Subscription
    ) -> ReplicatedSubscription:
        """Home ``subscription`` at ``primary`` (or, if the primary is
        currently dead, at its best live candidate) under management."""
        if subscription.subscription_id in self._records:
            raise ValueError(
                f"subscription {subscription.subscription_id!r} is already managed"
            )
        record = ReplicatedSubscription(
            subscription=subscription,
            primary=primary,
            replicas=self.replicas_for(primary),
            acting=primary,
        )
        acting = self._desired_home(record)
        record.acting = acting
        self.cluster.subscribe(acting, subscription)
        self._records[subscription.subscription_id] = record
        return record

    def unsubscribe(self, subscription_id: str) -> bool:
        record = self._records.pop(subscription_id, None)
        if record is None:
            return False
        return self.cluster.unsubscribe(record.acting, subscription_id)

    def record(self, subscription_id: str) -> ReplicatedSubscription:
        return self._records[subscription_id]

    def acting_home(self, subscription_id: str) -> str:
        return self._records[subscription_id].acting

    @property
    def records(self) -> List[ReplicatedSubscription]:
        return list(self._records.values())

    # -- liveness ----------------------------------------------------------

    def broker_is_dead(self, broker: str) -> bool:
        return broker in self._dead

    def _judge(self, broker: str) -> bool:
        """Dead iff the broker has intended links and all are down."""
        neighbours = self._neighbours(broker)
        if not neighbours:
            return False
        return not any(
            self.cluster.overlay_link_is_up(broker, neighbour)
            for neighbour in neighbours
        )

    def _on_link_event(self, kind: str, first: str, second: str, at: float) -> None:
        changed = False
        for endpoint in (first, second):
            dead = self._judge(endpoint)
            if dead and endpoint not in self._dead:
                self._dead.add(endpoint)
                changed = True
            elif not dead and endpoint in self._dead:
                self._dead.discard(endpoint)
                changed = True
        if changed:
            self._reevaluate()

    # -- failover / failback ----------------------------------------------

    def _desired_home(self, record: ReplicatedSubscription) -> str:
        """First live candidate; the current home when every candidate is
        dead (nowhere better to go — replay recovers the window)."""
        for candidate in record.candidates:
            if candidate not in self._dead:
                return candidate
        return record.acting

    def _reevaluate(self) -> None:
        metrics = self.cluster.metrics
        for record in self._records.values():
            desired = self._desired_home(record)
            if desired == record.acting:
                continue
            previous = record.acting
            # Retract at the old home and re-issue at the new one through
            # the normal control plane: delta repair keeps the tables
            # canonical (== rebuilt_snapshot) and verify_repairs-clean.
            self.cluster.unsubscribe(previous, record.subscription.subscription_id)
            self.cluster.subscribe(desired, record.subscription)
            record.acting = desired
            record.moves += 1
            if desired == record.primary:
                self.failbacks += 1
                metrics.counter("replication.failbacks").increment()
            else:
                self.failovers += 1
                metrics.counter("replication.failovers").increment()
