"""Pluggable shard executors: where a sharded engine's match work runs.

:class:`~repro.cluster.sharded.ShardedMatchingEngine` partitions its
subscription set across N inner engines; *how* the per-shard match work is
executed is this module's concern.  A :class:`ShardExecutor` receives the
live shard views plus an event batch and returns one result table per
shard — the engine merges them, so every executor is observationally
identical by construction and the property suite runs the same oracle
checks against each.

* :class:`SerialExecutor` — runs each shard's ``match_batch`` inline in
  the calling process.  This is the default and preserves the pre-executor
  behavior byte for byte (same calls, same order, same objects).
* :class:`ThreadExecutor` — dispatches each shard's batch to a
  ``ThreadPoolExecutor``.  Threads share the process, so shards run on
  the live engines with zero serialization; under the GIL CPU-bound
  matching gains nothing, but delivery fan-out that blocks on IO (socket
  writes, disk spooling) overlaps across shards.
* :class:`MultiprocessExecutor` — dispatches chunked match work to a pool
  of worker processes.  Workers never see the parent's live engines:
  each task carries a *picklable subscription spec* (the shard's
  subscription list) plus a version number; a worker lazily builds a plain
  :class:`~repro.pubsub.matching.MatchingEngine` from the spec the first
  time it sees a (shard, version) pair and caches it, so steady-state
  traffic pays only event/result pickling, not engine rebuilds.  Shard
  mutations bump the version, invalidating worker caches on the next call.

The multiprocess path trades per-call serialization overhead for
parallelism across cores; on small batches or few cores the serial
executor wins (see the "Message plane" section of PERFORMANCE.md for the
measured crossover).
"""

from __future__ import annotations

import itertools
import os
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.pubsub.events import Event
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.subscriptions import Subscription

# One result table per shard: table[event_index] -> id-sorted matches.
ShardResults = List[List[List[Subscription]]]

_engine_ids = itertools.count(1)


@dataclass(frozen=True)
class ShardView:
    """What an executor may see of one shard.

    ``key`` is stable across calls for the lifetime of the owning engine
    (executors key caches on it); ``version`` changes whenever the shard's
    subscription set changes; ``engine`` is the live in-process engine —
    only in-process executors may touch it, process-based executors must
    go through ``spec()``.
    """

    key: Tuple[int, int]
    version: int
    engine: MatchingEngine

    def spec(self) -> List[Subscription]:
        """Picklable description of the shard: its subscription list."""
        return self.engine.subscriptions()


class SerialExecutor:
    """Run every shard's batch inline (the classic single-process path)."""

    #: In-process executors let the engine keep its zero-copy single-event
    #: fast paths (``match``/``matches_any`` loop the live shards directly).
    in_process = True

    def match_batch(self, views: Sequence[ShardView], events: Sequence[Event]) -> ShardResults:
        return [view.engine.match_batch(events) for view in views]

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class ThreadExecutor:
    """Run each shard's batch on a thread pool (IO-overlap executor).

    One task per shard: a shard's live engine is only ever touched by one
    worker thread per call, so the engines' lazily built caches see no
    concurrent mutation.  Match work itself is GIL-bound — this executor
    exists for engines whose delivery/match path *blocks* (IO-bound
    fan-out), where thread overlap is real parallelism.
    """

    in_process = True

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers if workers is not None else min(8, (os.cpu_count() or 1) + 2)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="shard"
            )
        return self._pool

    def close(self) -> None:
        """Shut the thread pool down; it restarts lazily on the next call."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def match_batch(self, views: Sequence[ShardView], events: Sequence[Event]) -> ShardResults:
        events = list(events)
        if not views or not events:
            return [[[] for _ in events] for _ in views]
        if len(views) == 1:
            # No overlap to win with a single shard; skip the pool hop.
            return [views[0].engine.match_batch(events)]
        pool = self._ensure_pool()
        futures = [pool.submit(view.engine.match_batch, events) for view in views]
        return [future.result() for future in futures]


# -- multiprocess worker side -------------------------------------------------

# Per-worker-process cache: shard key -> (version, engine built from spec).
# Bounded: engines for long-gone ShardedMatchingEngines (each gets a fresh
# engine id) would otherwise accumulate in a long-lived shared pool.
_WORKER_ENGINES: Dict[Tuple[int, int], Tuple[int, MatchingEngine]] = {}
_WORKER_ENGINE_CAP = 64


def _match_chunk(
    key: Tuple[int, int],
    version: int,
    spec_bytes: Optional[bytes],
    events: List[Event],
) -> List[List[Subscription]]:
    """Match one event chunk against one shard inside a worker process.

    ``spec_bytes`` is the shard's pickled subscription list; the engine
    built from it is cached per (shard, version), so repeated calls
    against an unchanged shard skip both the unpickle and the engine
    rebuild (the "lazy engine build" the executor promises) — the bytes
    ride along unopened.
    """
    cached = _WORKER_ENGINES.get(key)
    if cached is None or cached[0] != version:
        engine = MatchingEngine()
        for subscription in pickle.loads(spec_bytes) if spec_bytes else ():
            engine.add(subscription)
        while len(_WORKER_ENGINES) >= _WORKER_ENGINE_CAP:
            # FIFO eviction: dict order is insertion order, and stale
            # entries (dead engines, old versions) are the oldest.
            _WORKER_ENGINES.pop(next(iter(_WORKER_ENGINES)))
        _WORKER_ENGINES[key] = (version, engine)
    else:
        engine = cached[1]
    return engine.match_batch(events)


class MultiprocessExecutor:
    """Fan shard match work out to worker processes.

    Dispatch is chunked: each shard's event batch is split into up to
    ``chunk_size``-event chunks so a single large batch spreads across the
    pool even with few shards.  Results are reassembled in submission
    order, so the merged output is identical to the serial executor's.
    """

    in_process = False

    def __init__(
        self,
        processes: Optional[int] = None,
        chunk_size: int = 256,
        start_method: Optional[str] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError("processes must be at least 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.processes = processes if processes is not None else min(4, os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self._start_method = start_method
        self._pool = None
        # Parent-side spec cache: shard key -> (version, pickled spec);
        # the subscription list is extracted and pickled once per shard
        # version, not once per task.
        self._specs: Dict[Tuple[int, int], Tuple[int, bytes]] = {}
        self.tasks_dispatched = 0

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if self._start_method is not None:
                context = multiprocessing.get_context(self._start_method)
            elif "fork" in multiprocessing.get_all_start_methods():
                # Fork keeps worker start cheap and inherits sys.path; on
                # platforms without it (Windows/macOS spawn default) the
                # default context is used instead.
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.processes, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down and drop the parent-side spec cache;
        the executor restarts lazily on the next call (worker caches died
        with their processes, specs re-pickle on demand), so close()
        between bursts is always safe."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._specs.clear()

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def _spec_for(self, view: ShardView) -> bytes:
        cached = self._specs.get(view.key)
        if cached is not None and cached[0] == view.version:
            return cached[1]
        spec = pickle.dumps(view.spec(), protocol=pickle.HIGHEST_PROTOCOL)
        self._specs[view.key] = (view.version, spec)
        return spec

    def match_batch(self, views: Sequence[ShardView], events: Sequence[Event]) -> ShardResults:
        events = list(events)
        if not views or not events:
            return [[[] for _ in events] for _ in views]
        pool = self._ensure_pool()
        # One task per (shard, event chunk); chunk results concatenate in
        # order back into the shard's full result table.
        futures = []
        for shard_index, view in enumerate(views):
            spec = self._spec_for(view)
            for start in range(0, len(events), self.chunk_size):
                chunk = events[start : start + self.chunk_size]
                futures.append(
                    (
                        shard_index,
                        pool.submit(_match_chunk, view.key, view.version, spec, chunk),
                    )
                )
                self.tasks_dispatched += 1
        results: ShardResults = [[] for _ in views]
        for shard_index, future in futures:
            results[shard_index].extend(future.result())
        return results


EXECUTOR_KINDS = ("serial", "thread", "multiprocess")


def make_executor(kind: str = "serial", **options) -> object:
    """Build an executor by name (``serial``, ``thread`` or ``multiprocess``).

    The string form is what experiment CLIs expose (``--executor``); code
    can always construct the classes directly.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(**options)
    if kind == "multiprocess":
        return MultiprocessExecutor(**options)
    raise ValueError(f"unknown executor kind {kind!r} ({'|'.join(EXECUTOR_KINDS)})")


def sharded_engine_factory(
    num_shards: int = 4,
    executor: Optional[object] = None,
    executor_kind: Optional[str] = None,
    **engine_options,
) -> Callable[[], "object"]:
    """An ``engine_factory`` producing sharded engines on a chosen executor.

    Everything that accepts an engine factory (``Broker``,
    ``BrokerOverlay``, ``BrokerCluster``, the experiments) can run sharded
    nodes on any executor through this one hook.  A shared ``executor``
    instance means all engines produced by the factory reuse one worker
    pool; with ``executor_kind`` each engine gets its own.
    """
    from repro.cluster.sharded import ShardedMatchingEngine

    def factory():
        chosen = executor
        if chosen is None and executor_kind is not None:
            chosen = make_executor(executor_kind)
        return ShardedMatchingEngine(
            num_shards=num_shards, executor=chosen, **engine_options
        )

    return factory


def next_engine_id() -> int:
    """Process-unique engine id; shard cache keys are (engine id, shard)."""
    return next(_engine_ids)
