"""Fault injection: scheduled broker crashes, restarts and link churn.

A :class:`FaultPlan` is a validated, time-ordered list of
:class:`FaultAction` entries — broker crashes/recoveries and physical
link down/up transitions.  :class:`FaultInjector` arms a plan against a
:class:`~repro.cluster.broker_cluster.BrokerCluster`: each action becomes
a simulation event that mutates the *physical* layer (process liveness
via ``crash_broker``/``recover_broker``, message transit via
``SimulatedNetwork.set_link_down``/``set_link_up``).

The injector deliberately does **not** touch routing state.  Detecting
that a peer is gone and repairing routes is the recovery subsystem's job
(:class:`~repro.cluster.recovery.FailureDetector`), so the gap between a
fault happening and the fabric healing — the window where events are
forwarded into the void and counted lost — is part of what the churn
experiment measures.

:meth:`FaultPlan.random_churn` generates the seeded crash/recover and
link-flap schedules the C2 sweep uses: per-broker crashes arrive Poisson
at ``crash_rate``, each followed by a recovery ``recovery_delay`` later,
with optional link flaps on the same pattern.  Every fault generated
within the window is paired with its recovery, so a plan always ends
with the whole cluster back up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.sim.rng import SeededRNG

CRASH = "crash"
RECOVER = "recover"
LINK_DOWN = "link_down"
LINK_UP = "link_up"
_KINDS = (CRASH, RECOVER, LINK_DOWN, LINK_UP)


@dataclass(frozen=True, order=True)
class FaultAction:
    """One scheduled fault: what happens, when, to which target.

    ``target`` is ``(broker,)`` for crash/recover and ``(a, b)`` for link
    transitions.  Ordering is by time (then kind/target), so a sorted
    action list is a valid schedule.
    """

    time: float
    kind: str
    target: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {_KINDS})")
        expected = 1 if self.kind in (CRASH, RECOVER) else 2
        if len(self.target) != expected:
            raise ValueError(
                f"{self.kind} takes {expected} target name(s), got {self.target!r}"
            )


def crash(time: float, broker: str) -> FaultAction:
    return FaultAction(time, CRASH, (broker,))


def recover(time: float, broker: str) -> FaultAction:
    return FaultAction(time, RECOVER, (broker,))


def link_down(time: float, first: str, second: str) -> FaultAction:
    return FaultAction(time, LINK_DOWN, (first, second))


def link_up(time: float, first: str, second: str) -> FaultAction:
    return FaultAction(time, LINK_UP, (first, second))


class FaultPlan:
    """An ordered schedule of fault actions."""

    def __init__(self, actions: Iterable[FaultAction] = ()) -> None:
        self.actions: List[FaultAction] = sorted(actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def add(self, action: FaultAction) -> "FaultPlan":
        self.actions.append(action)
        self.actions.sort()
        return self

    @property
    def last_time(self) -> float:
        return self.actions[-1].time if self.actions else 0.0

    @property
    def crash_count(self) -> int:
        return sum(1 for action in self.actions if action.kind == CRASH)

    @property
    def link_flap_count(self) -> int:
        return sum(1 for action in self.actions if action.kind == LINK_DOWN)

    def peak_concurrent_outages(self) -> int:
        """The largest number of brokers down at once under this plan.

        The replication experiment reports it next to the replication
        factor R: exactly-once through churn is only at stake when the
        peak exceeds the R+1 copies of a subscription's home set."""
        transitions: List[Tuple[float, int]] = []
        for _name, started, ended in self.broker_outages():
            transitions.append((started, 1))
            transitions.append((ended, -1))
        peak = current = 0
        # Sorting (time, delta) lands recoveries before same-instant
        # crashes — the conservative reading of a back-to-back swap.
        for _time, delta in sorted(transitions):
            current += delta
            peak = max(peak, current)
        return peak

    def broker_outages(self) -> List[Tuple[str, float, float]]:
        """Matched ``(broker, crash time, recovery time)`` windows."""
        open_crash: dict = {}
        outages: List[Tuple[str, float, float]] = []
        for action in self.actions:
            if action.kind == CRASH:
                open_crash[action.target[0]] = action.time
            elif action.kind == RECOVER:
                started = open_crash.pop(action.target[0], None)
                if started is not None:
                    outages.append((action.target[0], started, action.time))
        return outages

    @classmethod
    def random_churn(
        cls,
        brokers: Sequence[str],
        rng: SeededRNG,
        start: float,
        end: float,
        crash_rate: float = 0.5,
        recovery_delay: float = 0.5,
        links: Sequence[Tuple[str, str]] = (),
        link_flap_rate: float = 0.0,
        link_down_time: float = 0.3,
    ) -> "FaultPlan":
        """Seeded Poisson churn over ``[start, end)``.

        Each broker crashes at rate ``crash_rate`` (crashes per simulated
        second) and recovers ``recovery_delay`` later; outages of one
        broker never overlap.  With ``link_flap_rate`` each listed link
        additionally flaps down for ``link_down_time`` at its own Poisson
        arrival times.  Recoveries always make it into the plan even when
        they land past ``end``, so the plan restores full health.
        """
        if end < start:
            raise ValueError("end must not precede start")
        if crash_rate < 0 or link_flap_rate < 0:
            raise ValueError("rates must be non-negative")
        if recovery_delay <= 0 or link_down_time <= 0:
            raise ValueError("recovery windows must be positive")
        actions: List[FaultAction] = []
        if crash_rate > 0:
            for name in brokers:
                fork = rng.fork(f"crash:{name}")
                at = start + fork.expovariate(crash_rate)
                while at < end:
                    back = at + recovery_delay
                    actions.append(crash(at, name))
                    actions.append(recover(back, name))
                    at = back + fork.expovariate(crash_rate)
        if link_flap_rate > 0:
            for first, second in links:
                fork = rng.fork(f"flap:{first}:{second}")
                at = start + fork.expovariate(link_flap_rate)
                while at < end:
                    back = at + link_down_time
                    actions.append(link_down(at, first, second))
                    actions.append(link_up(back, first, second))
                    at = back + fork.expovariate(link_flap_rate)
        return cls(actions)


class FaultInjector:
    """Arms a :class:`FaultPlan` against a broker cluster's sim clock."""

    def __init__(self, cluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.applied: List[FaultAction] = []
        self._armed = False

    def schedule(self) -> int:
        """Schedule every action on the cluster's simulation engine.

        Returns the number of actions armed.  Call once, before (or
        during) the run; actions in the past raise, like any scheduling.
        """
        if self._armed:
            raise RuntimeError("fault plan already scheduled")
        self._armed = True
        for action in self.plan:
            self.cluster.sim.schedule_at(
                action.time,
                self._apply(action),
                label=f"fault:{action.kind}:{'-'.join(action.target)}",
            )
        return len(self.plan)

    def _apply(self, action: FaultAction):
        def fire(_engine) -> None:
            tracer = getattr(self.cluster, "tracer", None)
            if action.kind == CRASH:
                self.cluster.crash_broker(action.target[0])
            elif action.kind == RECOVER:
                self.cluster.recover_broker(action.target[0])
            elif action.kind == LINK_DOWN:
                self.cluster.network.set_link_down(*action.target)
                # Physical link faults bypass the cluster's fail_link hook
                # (routing only learns via the detector), so open the
                # tracer's always-sample window here or 1-in-N sampling
                # could miss the start of the flap.
                if tracer is not None:
                    self.cluster.tracer.note_anomaly(
                        f"phys_link_down:{'-'.join(action.target)}",
                        self.cluster.sim.now,
                    )
            else:
                self.cluster.network.set_link_up(*action.target)
                clear = getattr(self.cluster, "_maybe_clear_anomaly", None)
                if clear is not None:
                    clear()
            self.applied.append(action)
            self.cluster.metrics.counter(f"faults.{action.kind}").increment()

        return fire
