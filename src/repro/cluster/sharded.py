"""Sharded matching engine: subscriptions partitioned across inner engines.

The single-process :class:`~repro.pubsub.matching.MatchingEngine` is the
scale ceiling the ROADMAP names: one engine owns every subscription.  A
:class:`ShardedMatchingEngine` splits the subscription set across N inner
engines under a placement policy (see :mod:`repro.cluster.placement`) and
merges per-shard hits at match time.  Because the shards *partition* the
set, any placement yields exactly the single-engine results — the property
tests in ``tests/property/test_cluster_equivalence.py`` pin this against
the :class:`~repro.pubsub.matching.NaiveMatchingEngine` oracle, including
across rebalances.

Rebalancing: when shard loads skew past ``rebalance_threshold`` (max load
over mean load), the engine asks the placement policy to refit itself to
the live population and migrates every subscription whose assignment
moved (drain/refill).  Hash placement never moves anything; range
placement recomputes quantile boundaries.

Execution: *where* per-shard match work runs is delegated to a pluggable
:class:`~repro.cluster.workers.ShardExecutor`-style object — the default
:class:`~repro.cluster.workers.SerialExecutor` runs shards inline exactly
as before, a :class:`~repro.cluster.workers.MultiprocessExecutor` fans
chunked batches out to worker processes.  The merge logic is shared, so
all executors produce identical results (pinned by the same oracle suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.cluster.placement import HashPlacement
from repro.cluster.workers import SerialExecutor, ShardView, next_engine_id
from repro.pubsub.broker import EngineFactory
from repro.pubsub.events import Event
from repro.pubsub.matching import MatchingEngine, distinct_subscribers
from repro.pubsub.subscriptions import Subscription


class ShardedMatchingEngine:
    """Partition subscriptions across N inner matching engines.

    Drop-in for :class:`~repro.pubsub.matching.MatchingEngine`: the full
    matching interface (``match`` / ``match_count`` / ``matches_any`` /
    ``match_subscribers`` / ``match_batch`` / ``any_covering`` and the
    maintenance operations) behaves identically, so brokers and overlays
    can run sharded nodes through the pluggable engine factory.
    """

    def __init__(
        self,
        num_shards: int = 4,
        placement: Optional[object] = None,
        engine_factory: EngineFactory = MatchingEngine,
        rebalance_threshold: float = 2.0,
        auto_rebalance: bool = True,
        executor: Optional[object] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if rebalance_threshold < 1.0:
            raise ValueError("rebalance_threshold must be >= 1 (max/mean load ratio)")
        self._shards: List[MatchingEngine] = [engine_factory() for _ in range(num_shards)]
        self._placement = placement if placement is not None else HashPlacement()
        self._shard_of: Dict[str, int] = {}
        # Where the per-shard match work runs (see repro.cluster.workers):
        # the default serial executor is the classic in-process path.
        self._executor = executor if executor is not None else SerialExecutor()
        self._engine_id = next_engine_id()
        # Bumped whenever a shard's subscription set changes, so
        # process-based executors can cache per-shard worker engines.
        self._shard_versions: List[int] = [0] * num_shards
        self._rebalance_threshold = float(rebalance_threshold)
        self._auto_rebalance = auto_rebalance
        self._adds_since_rebalance = 0
        # Total drain/refill cycles performed (observable by experiments).
        self.rebalances = 0
        self.migrations = 0

    # -- maintenance -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def placement(self) -> object:
        return self._placement

    @property
    def executor(self) -> object:
        return self._executor

    def shard_views(self) -> List[ShardView]:
        """Live views of the non-empty shards, for the executor."""
        return [
            ShardView(
                key=(self._engine_id, index),
                version=self._shard_versions[index],
                engine=shard,
            )
            for index, shard in enumerate(self._shards)
            if len(shard)
        ]

    def close(self) -> None:
        """Release executor resources (worker pools); the engine itself
        remains usable and the executor restarts lazily if called again."""
        close = getattr(self._executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ShardedMatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def mutation_version(self) -> int:
        """Monotonic counter over all shard mutations (API parity with
        :attr:`MatchingEngine.mutation_version`), so external caches can
        detect staleness without knowing the shard layout.  The sharded
        engine deliberately does NOT expose ``match_batch_cached``: its
        per-shard ``match_batch`` calls already carry BatchPublisher-style
        per-batch probe/result caches inside each shard, and worker-pool
        executors cache whole shard engines by these versions.
        """
        return sum(self._shard_versions)

    def shard_loads(self) -> List[int]:
        """Live subscription count per shard."""
        return [len(shard) for shard in self._shards]

    def skew(self) -> float:
        """Max shard load over mean shard load (1.0 = perfectly even)."""
        loads = self.shard_loads()
        total = sum(loads)
        if total == 0:
            return 1.0
        return max(loads) * len(loads) / total

    def telemetry(self) -> Dict[str, object]:
        """Plain-dict engine state for the observability exporters
        (:mod:`repro.obs.export`) and experiment report tables."""
        loads = self.shard_loads()
        return {
            "engine": "sharded",
            "num_shards": self.num_shards,
            "subscriptions": sum(loads),
            "shard_loads": loads,
            "skew": round(self.skew(), 3),
            "rebalances": self.rebalances,
            "migrations": self.migrations,
            "placement": type(self._placement).__name__,
            "executor": type(self._executor).__name__,
        }

    def add(self, subscription: Subscription) -> None:
        """Index a subscription on its placement shard.

        Re-adding a known id follows the inner engine's replace-on-readd
        semantics; if the new definition places on a different shard, the
        stale entry is drained from the old shard first.
        """
        subscription_id = subscription.subscription_id
        target = self._placement.shard_for(subscription, len(self._shards))
        current = self._shard_of.get(subscription_id)
        if current is not None and current != target:
            self._shards[current].remove(subscription_id)
            self._shard_versions[current] += 1
        self._shards[target].add(subscription)
        self._shard_versions[target] += 1
        self._shard_of[subscription_id] = target
        self._adds_since_rebalance += 1
        if self._auto_rebalance:
            self._maybe_rebalance()

    def add_many(self, subscriptions: Iterable[Subscription]) -> None:
        """Batch-index subscriptions through placement in one pass per shard.

        Equivalent to ``add`` in a loop (the last definition of a
        duplicated id wins), but subscriptions are grouped by placement
        target and handed to each inner engine as one ``add_many`` batch,
        shard versions bump once per touched shard, and rebalancing is
        evaluated once at the end.  Every shard shares the process-global
        interned predicate pool, so cross-shard copies of a predicate or
        conjunction shape cost one pooled object, not one per shard.
        """
        total = 0
        unique: Dict[str, Subscription] = {}
        for subscription in subscriptions:
            unique[subscription.subscription_id] = subscription
            total += 1
        if not unique:
            return
        shard_count = len(self._shards)
        groups: Dict[int, List[Subscription]] = {}
        touched: Set[int] = set()
        for subscription_id, subscription in unique.items():
            target = self._placement.shard_for(subscription, shard_count)
            current = self._shard_of.get(subscription_id)
            if current is not None and current != target:
                self._shards[current].remove(subscription_id)
                touched.add(current)
            groups.setdefault(target, []).append(subscription)
            self._shard_of[subscription_id] = target
        for target, group in groups.items():
            engine = self._shards[target]
            batch_add = getattr(engine, "add_many", None)
            if batch_add is not None:
                batch_add(group)
            else:
                for subscription in group:
                    engine.add(subscription)
            touched.add(target)
        for index in touched:
            self._shard_versions[index] += 1
        self._adds_since_rebalance += total
        if self._auto_rebalance:
            self._maybe_rebalance()

    def remove(self, subscription_id: str) -> bool:
        shard = self._shard_of.pop(subscription_id, None)
        if shard is None:
            return False
        self._shard_versions[shard] += 1
        return self._shards[shard].remove(subscription_id)

    def __len__(self) -> int:
        return len(self._shard_of)

    def __contains__(self, subscription_id: str) -> bool:
        return subscription_id in self._shard_of

    def get(self, subscription_id: str) -> Optional[Subscription]:
        shard = self._shard_of.get(subscription_id)
        if shard is None:
            return None
        return self._shards[shard].get(subscription_id)

    def subscriptions(self) -> List[Subscription]:
        collected: List[Subscription] = []
        for shard in self._shards:
            collected.extend(shard.subscriptions())
        return collected

    def any_covering(self, subscription: Subscription) -> bool:
        return any(shard.any_covering(subscription) for shard in self._shards)

    # -- rebalancing -------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        # Amortize: a drain/refill is O(total), so only consider one after
        # enough mutations, and only once the population is large enough
        # for skew to be meaningful.
        total = len(self._shard_of)
        if total < 8 * len(self._shards):
            return
        if self._adds_since_rebalance < max(16, total // 4):
            return
        if self.skew() <= self._rebalance_threshold:
            return
        self.rebalance()

    def rebalance(self) -> int:
        """Refit the placement policy and migrate moved subscriptions.

        Returns the number of subscriptions that changed shard.  Matching
        results are unaffected (the shards still partition the set); only
        load distribution changes.  When ``refit`` reports no state change
        the live assignments already agree with the placement, so the
        drain/refill walk is skipped entirely (and ``rebalances`` does not
        count a no-op cycle) — under hash placement, or an unfixable skew
        such as all placement keys being equal, a skew-triggered attempt
        costs one refit pass, not a full migration scan.
        """
        self._adds_since_rebalance = 0
        live = self.subscriptions()
        if not self._placement.refit(live, len(self._shards)):
            return 0
        moved = 0
        num_shards = len(self._shards)
        for subscription in live:
            subscription_id = subscription.subscription_id
            current = self._shard_of[subscription_id]
            target = self._placement.shard_for(subscription, num_shards)
            if target != current:
                self._shards[current].remove(subscription_id)
                self._shards[target].add(subscription)
                self._shard_versions[current] += 1
                self._shard_versions[target] += 1
                self._shard_of[subscription_id] = target
                moved += 1
        self.rebalances += 1
        self.migrations += moved
        return moved

    # -- matching ----------------------------------------------------------

    def match(self, event: Event) -> List[Subscription]:
        """All matching subscriptions across shards (sorted by id)."""
        if not self._executor.in_process:
            # Process-based executors only speak match_batch; a single
            # event is a batch of one (the merge below is shared).
            return self.match_batch([event])[0]
        merged: List[Subscription] = []
        parts = 0
        for shard in self._shards:
            if not len(shard):
                continue
            hits = shard.match(event)
            if hits:
                merged.extend(hits)
                parts += 1
        if parts > 1:
            # Each shard returns an id-sorted list; a single global sort of
            # the concatenation restores the single-engine order.
            merged.sort(key=lambda subscription: subscription.subscription_id)
        return merged

    def match_count(self, event: Event) -> int:
        if not self._executor.in_process:
            return len(self.match(event))
        return sum(shard.match_count(event) for shard in self._shards if len(shard))

    def matches_any(self, event: Event) -> bool:
        if not self._executor.in_process:
            return bool(self.match(event))
        return any(shard.matches_any(event) for shard in self._shards if len(shard))

    def match_subscribers(self, event: Event) -> List[str]:
        return distinct_subscribers(self.match(event))

    def match_batch(self, events: Sequence[Event]) -> List[List[Subscription]]:
        """Batch-match against every shard and merge per-event hits.

        Each shard amortizes probe work across the whole batch (see
        :meth:`MatchingEngine.match_batch`); the merge re-sorts per event
        only when more than one shard contributed hits.
        """
        events = list(events)
        shard_results = self._executor.match_batch(self.shard_views(), events)
        if not shard_results:
            return [[] for _ in events]
        if len(shard_results) == 1:
            return shard_results[0]
        merged: List[List[Subscription]] = []
        for index in range(len(events)):
            row: List[Subscription] = []
            parts = 0
            for result in shard_results:
                hits = result[index]
                if hits:
                    row.extend(hits)
                    parts += 1
            if parts > 1:
                row.sort(key=lambda subscription: subscription.subscription_id)
            merged.append(row)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedMatchingEngine(shards={self.shard_loads()}, "
            f"placement={self._placement!r}, rebalances={self.rebalances})"
        )
