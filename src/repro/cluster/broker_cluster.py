"""Broker cluster: mailbox-driven broker processes on the simulation engine.

The :class:`~repro.pubsub.router.BrokerOverlay` models routing topology but
executes synchronously — a publication runs to completion instantly.  A
:class:`BrokerCluster` instead models each broker as a *process*: published
events enter a per-broker mailbox (FIFO queue) and are served by the
broker at a configurable service rate, optionally in batches with a fixed
per-cycle overhead (the connection handshake / syscall / dispatch cost
batching amortizes).  The cluster runs on
:class:`~repro.sim.engine.SimulationEngine`, so queueing delay, service
time and throughput come out of simulated time, and all observations land
in a :class:`~repro.sim.metrics.MetricsRegistry`:

* ``cluster.queue_delay`` — histogram of arrival-to-completion delay;
* ``cluster.wait_time`` — histogram of arrival-to-service-start delay;
* ``cluster.service_batch`` — histogram of served batch sizes;
* ``cluster.events_processed`` / ``cluster.deliveries`` — counters;
* ``cluster.queue_depth.<broker>`` — gauge of the live mailbox depth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.pubsub.broker import EngineFactory
from repro.pubsub.events import Event
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.subscriptions import Subscription
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsRegistry

# Cluster deliveries also carry the serving broker's name (4 args, unlike
# the 3-arg repro.pubsub.broker.DeliveryCallback).
ClusterDeliveryCallback = Callable[[str, str, Event, Subscription], None]


@dataclass
class BrokerProcessStats:
    """Per-broker accounting over one simulation run."""

    events_enqueued: int = 0
    events_processed: int = 0
    deliveries: int = 0
    service_cycles: int = 0
    busy_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "events_enqueued": float(self.events_enqueued),
            "events_processed": float(self.events_processed),
            "deliveries": float(self.deliveries),
            "service_cycles": float(self.service_cycles),
            "busy_time": self.busy_time,
        }


class BrokerProcess:
    """One mailbox-driven broker: a queue, a matching engine, a server."""

    def __init__(
        self,
        name: str,
        engine: MatchingEngine,
        service_rate: float,
        batch_size: int,
        batch_overhead: float,
    ) -> None:
        if service_rate <= 0:
            raise ValueError("service_rate must be positive (events per second)")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if batch_overhead < 0:
            raise ValueError("batch_overhead must be non-negative")
        self.name = name
        self.engine = engine
        self.service_rate = service_rate
        self.batch_size = batch_size
        self.batch_overhead = batch_overhead
        self.mailbox: Deque[Tuple[float, Event]] = deque()
        self.busy = False
        self.stats = BrokerProcessStats()

    def subscribe(self, subscription: Subscription) -> None:
        self.engine.add(subscription)

    def unsubscribe(self, subscription_id: str) -> bool:
        return self.engine.remove(subscription_id)

    @property
    def queue_depth(self) -> int:
        return len(self.mailbox)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BrokerProcess({self.name!r}, queued={len(self.mailbox)}, "
            f"rate={self.service_rate}, batch={self.batch_size})"
        )


class BrokerCluster:
    """A set of broker processes sharing one simulation clock and metrics."""

    def __init__(
        self,
        sim: Optional[SimulationEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
        engine_factory: EngineFactory = MatchingEngine,
        service_rate: float = 2000.0,
        batch_size: int = 1,
        batch_overhead: float = 0.0,
    ) -> None:
        self.sim = sim if sim is not None else SimulationEngine()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.engine_factory = engine_factory
        self.default_service_rate = service_rate
        self.default_batch_size = batch_size
        self.default_batch_overhead = batch_overhead
        self.brokers: Dict[str, BrokerProcess] = {}
        self._delivery_callbacks: List[ClusterDeliveryCallback] = []

    # -- wiring ------------------------------------------------------------

    def add_broker(
        self,
        name: str,
        service_rate: Optional[float] = None,
        batch_size: Optional[int] = None,
        batch_overhead: Optional[float] = None,
        engine: Optional[MatchingEngine] = None,
    ) -> BrokerProcess:
        if name in self.brokers:
            raise ValueError(f"broker {name!r} already exists")
        broker = BrokerProcess(
            name=name,
            engine=engine if engine is not None else self.engine_factory(),
            service_rate=(
                service_rate if service_rate is not None else self.default_service_rate
            ),
            batch_size=batch_size if batch_size is not None else self.default_batch_size,
            batch_overhead=(
                batch_overhead
                if batch_overhead is not None
                else self.default_batch_overhead
            ),
        )
        self.brokers[name] = broker
        return broker

    def subscribe(self, broker_name: str, subscription: Subscription) -> None:
        self._broker(broker_name).subscribe(subscription)

    def on_delivery(self, callback: ClusterDeliveryCallback) -> None:
        """Register a callback invoked per delivery
        (broker name, subscriber, event, matching subscription)."""
        self._delivery_callbacks.append(callback)

    def _broker(self, name: str) -> BrokerProcess:
        broker = self.brokers.get(name)
        if broker is None:
            raise KeyError(f"unknown broker {name!r}")
        return broker

    # -- event flow --------------------------------------------------------

    def publish(self, broker_name: str, event: Event) -> None:
        """Enqueue an event into a broker's mailbox at the current sim time."""
        broker = self._broker(broker_name)
        broker.mailbox.append((self.sim.now, event))
        broker.stats.events_enqueued += 1
        self.metrics.counter("cluster.events_enqueued").increment()
        self.metrics.gauge(f"cluster.queue_depth.{broker_name}").set(
            broker.queue_depth
        )
        self._start_service(broker)

    def publish_at(self, time: float, broker_name: str, event: Event) -> None:
        """Schedule a publication at an absolute simulation time."""
        self.sim.schedule_at(
            time,
            lambda _engine: self.publish(broker_name, event),
            label=f"publish:{broker_name}",
        )

    def _start_service(self, broker: BrokerProcess) -> None:
        if broker.busy or not broker.mailbox:
            return
        broker.busy = True
        # Defer the batch draw by one zero-delay dispatch event: the sim
        # fires same-time events FIFO, so publications landing at the same
        # instant coalesce into one service cycle instead of the first
        # arrival starting a batch of one.
        self.sim.schedule_in(
            0.0,
            lambda _engine: self._dispatch(broker),
            label=f"dispatch:{broker.name}",
        )

    def _dispatch(self, broker: BrokerProcess) -> None:
        if not broker.mailbox:
            broker.busy = False
            return
        # The batch is drawn (and leaves the queue) when service begins;
        # its size fixes the cycle's service time.
        batch: List[Tuple[float, Event]] = [
            broker.mailbox.popleft()
            for _ in range(min(broker.batch_size, len(broker.mailbox)))
        ]
        service_time = broker.batch_overhead + len(batch) / broker.service_rate
        start = self.sim.now
        broker.stats.service_cycles += 1
        broker.stats.busy_time += service_time
        self.metrics.gauge(f"cluster.queue_depth.{broker.name}").set(
            broker.queue_depth
        )
        self.metrics.histogram("cluster.service_batch").observe(len(batch))
        for enqueued_at, _event in batch:
            self.metrics.histogram("cluster.wait_time").observe(start - enqueued_at)

        def complete(_engine: SimulationEngine) -> None:
            self._complete_service(broker, batch)

        self.sim.schedule_in(service_time, complete, label=f"serve:{broker.name}")

    def _complete_service(
        self, broker: BrokerProcess, batch: List[Tuple[float, Event]]
    ) -> None:
        now = self.sim.now
        events = [event for _at, event in batch]
        matches = broker.engine.match_batch(events)
        deliveries = 0
        for (enqueued_at, event), row in zip(batch, matches):
            deliveries += len(row)
            self.metrics.histogram("cluster.queue_delay").observe(now - enqueued_at)
            for subscription in row:
                for callback in self._delivery_callbacks:
                    callback(broker.name, subscription.subscriber, event, subscription)
        broker.stats.events_processed += len(batch)
        broker.stats.deliveries += deliveries
        self.metrics.counter("cluster.events_processed").increment(len(batch))
        self.metrics.counter("cluster.deliveries").increment(deliveries)
        broker.busy = False
        self._start_service(broker)

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drive the simulation; returns the number of sim events executed."""
        return self.sim.run(until=until, max_events=max_events)

    # -- reporting ---------------------------------------------------------

    def throughput(self) -> float:
        """Events processed per simulated second (cluster-wide)."""
        if self.sim.now <= 0:
            return 0.0
        processed = self.metrics.counter("cluster.events_processed").value
        return processed / self.sim.now

    def stats_by_broker(self) -> Dict[str, Dict[str, float]]:
        return {
            name: broker.stats.as_dict()
            for name, broker in sorted(self.brokers.items())
        }
