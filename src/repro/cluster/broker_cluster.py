"""Broker cluster: mailbox-driven broker processes on the simulation engine.

The :class:`~repro.pubsub.router.BrokerOverlay` models routing topology but
executes synchronously — a publication runs to completion instantly.  A
:class:`BrokerCluster` instead models each broker as a *process*: published
events enter a per-broker mailbox (FIFO queue) and are served by the
broker at a configurable service rate, optionally in batches with a fixed
per-cycle overhead (the connection handshake / syscall / dispatch cost
batching amortizes).

Clusters are *routed*: brokers joined with :meth:`BrokerCluster.connect`
share the same :class:`~repro.cluster.routing.RoutingFabric` the
synchronous overlay uses, so subscriptions placed at one broker propagate
routes through the topology (pruned by covering) and served events are
forwarded along interested links.  Forwarding is not a function call — it
is an ``event.forward`` message through
:class:`~repro.sim.network.SimulatedNetwork` with per-link latency, landing
in the neighbour's mailbox like any publication, so hop latency, remote
queueing and service time all show up in the end-to-end delivery delay.

The data plane is *batched* end to end (PR 8): :meth:`BrokerCluster.publish_many`
enqueues a whole event batch as ONE mailbox entry, a service cycle
matches it through ``match_batch`` with per-broker probe/result caches
that persist across cycles (dropped on any engine mutation), next-hop
fan-out comes from the fabric's route-set cache (invalidated by a
routing-version counter bumped on every control-plane mutation), and all
served events sharing a next hop leave as one ``event.forward_batch``
message per link — one latency charge per coalesced message, while
delivery, statistics, tracing spans and loss attribution all stay
per-event.  The batched path is delivery-identical to per-event
``publish`` in a loop (pinned by the property suite).

The cluster runs on :class:`~repro.sim.engine.SimulationEngine`, so
queueing delay, service time and throughput come out of simulated time,
and all observations land in a :class:`~repro.sim.metrics.MetricsRegistry`:

* ``cluster.queue_delay`` — histogram of arrival-to-completion delay
  (per mailbox pass);
* ``cluster.wait_time`` — histogram of arrival-to-service-start delay;
* ``cluster.service_batch`` — histogram of served batch sizes;
* ``cluster.events_processed`` / ``cluster.deliveries`` — counters;
* ``cluster.events_forwarded`` — counter of inter-broker forwards sent;
* ``cluster.delivery_hops`` — histogram of overlay hops per delivery;
* ``cluster.e2e_delay`` — histogram of publish-to-delivery delay
  (queueing + service at every broker on the path + link latency);
* ``cluster.queue_depth.<broker>`` — gauge of the live mailbox depth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cluster.durable import DedupIndex
from repro.cluster.routing import RoutingFabric
from repro.obs.audit import RouteAuditLog
from repro.obs.trace import TraceContext, Tracer
from repro.pubsub.broker import Broker, EngineFactory
from repro.pubsub.events import Event
from repro.pubsub.matching import BatchMatchCache, MatchingEngine
from repro.pubsub.subscriptions import Subscription
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Link, Message, SimulatedNetwork

# Cluster deliveries also carry the serving broker's name (4 args, unlike
# the 3-arg repro.pubsub.broker.DeliveryCallback).
ClusterDeliveryCallback = Callable[[str, str, Event, Subscription], None]
# Vectorized delivery callback: (broker name, event, full match row).
ClusterDeliveryBatchCallback = Callable[[str, Event, List[Subscription]], None]
# Lifecycle notifications: ("crashed" | "recovered", broker name, sim time).
LifecycleCallback = Callable[[str, str, float], None]
# Overlay link notifications: ("failed" | "restored", first, second, sim time).
LinkEventCallback = Callable[[str, str, str, float], None]

# What a crash does to a broker's queued events: "freeze" keeps the
# mailbox for post-recovery service (durable queue), "drop" loses it
# (in-memory queue).  Single source of truth for validators and CLIs.
MAILBOX_POLICIES = ("freeze", "drop")


@dataclass
class EventEnvelope:
    """An event in flight through the cluster's message plane.

    Carries the routing context a plain :class:`Event` cannot: when the
    original publication entered the system (for end-to-end delay), how
    many overlay links it has crossed, and which neighbour handed it over
    (so forwarding never bounces an event back along its arrival link).
    ``trace`` is the sampled-trace handle (``None`` for unsampled events
    and for clusters without a tracer — the common, zero-cost case).
    ``attempt`` is the durable-replay incarnation of the publication: the
    mesh dedup seen-set is keyed ``(event_id, attempt)``, so a replay
    (attempt+1) traverses the redundant overlay again while in-flight
    duplicates of the same attempt are suppressed.
    """

    event: Event
    origin_time: float
    hops: int = 0
    came_from: Optional[str] = None
    trace: Optional[TraceContext] = None
    attempt: int = 0


@dataclass
class BatchEnvelope:
    """A batch of envelopes travelling (or queued) as one unit.

    Used both as a single mailbox entry (``publish_many`` enqueues the
    whole batch at once, so the queue pays one entry, one dispatch and
    one service-cycle overhead for it) and as the payload of an
    ``event.forward_batch`` network message (all served events sharing a
    next hop coalesce into one message per link).  Every member keeps its
    own :class:`EventEnvelope` — per-event hops, origin time and trace
    context survive batching untouched.
    """

    envelopes: List[EventEnvelope]


def _flatten_entries(
    entries: Iterable[Tuple[float, object]],
) -> List[Tuple[float, EventEnvelope]]:
    """Expand mailbox entries into per-event ``(enqueued_at, envelope)``
    pairs (a :class:`BatchEnvelope` entry contributes one pair per member,
    all stamped with the batch's enqueue time)."""
    flat: List[Tuple[float, EventEnvelope]] = []
    for enqueued_at, payload in entries:
        if type(payload) is BatchEnvelope:
            for envelope in payload.envelopes:
                flat.append((enqueued_at, envelope))
        else:
            flat.append((enqueued_at, payload))
    return flat


@dataclass
class BrokerProcessStats:
    """Per-broker accounting over one simulation run."""

    events_enqueued: int = 0
    events_processed: int = 0
    deliveries: int = 0
    service_cycles: int = 0
    busy_time: float = 0.0
    events_forwarded: int = 0
    forwards_received: int = 0
    duplicates_suppressed: int = 0
    crashes: int = 0
    events_lost: int = 0
    downtime: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "events_enqueued": float(self.events_enqueued),
            "events_processed": float(self.events_processed),
            "deliveries": float(self.deliveries),
            "service_cycles": float(self.service_cycles),
            "busy_time": self.busy_time,
            "events_forwarded": float(self.events_forwarded),
            "forwards_received": float(self.forwards_received),
            "duplicates_suppressed": float(self.duplicates_suppressed),
            "crashes": float(self.crashes),
            "events_lost": float(self.events_lost),
            "downtime": self.downtime,
        }


class BrokerProcess:
    """One mailbox-driven broker: a queue, a routing node, a server.

    The broker's matching engine and its routing state live on ``node``
    (a :class:`~repro.pubsub.broker.Broker`), shared with the routing
    fabric; ``engine`` exposes the node's local matching engine.
    """

    def __init__(
        self,
        name: str,
        node: Broker,
        service_rate: float,
        batch_size: int,
        batch_overhead: float,
        mailbox_policy: str = "freeze",
    ) -> None:
        if service_rate <= 0:
            raise ValueError("service_rate must be positive (events per second)")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if batch_overhead < 0:
            raise ValueError("batch_overhead must be non-negative")
        if mailbox_policy not in MAILBOX_POLICIES:
            raise ValueError(f"mailbox_policy must be one of {MAILBOX_POLICIES}")
        self.name = name
        self.node = node
        self.service_rate = service_rate
        self.batch_size = batch_size
        self.batch_overhead = batch_overhead
        # Entries are (enqueue time, EventEnvelope | BatchEnvelope): a
        # publish_many batch (or a coalesced forward) occupies ONE entry.
        self.mailbox: Deque[Tuple[float, object]] = deque()
        # Events across all mailbox entries, kept so queue_depth stays
        # O(1) with batch entries in the queue.
        self._queued_events = 0
        self.busy = False
        self.stats = BrokerProcessStats()
        # Cross-cycle probe/result cache for the local engine's batched
        # matching; self-invalidates on engine mutation (version check).
        self._match_cache = BatchMatchCache()
        # -- crash lifecycle -------------------------------------------------
        # What happens to queued work when the broker dies: "freeze" keeps
        # the mailbox for post-recovery service (durable queue), "drop"
        # loses it (in-memory queue).  The batch *in service* is always
        # lost — it existed only in the crashed process.
        self.mailbox_policy = mailbox_policy
        self.up = True
        # Bumped on every crash so stale service completions scheduled by a
        # previous life of the broker are ignored.
        self.incarnation = 0
        self.crashed_at: Optional[float] = None
        self._in_service: Optional[List[Tuple[float, EventEnvelope]]] = None
        # Set by BrokerCluster.add_broker so the per-broker subscribe
        # helpers go through the routing fabric (standalone processes
        # outside a cluster fall back to local-only behavior).
        self._cluster: Optional["BrokerCluster"] = None
        # Per-event dedup seen-set, present only on cyclic (mesh)
        # clusters: redundant paths deliver the same event along several
        # routes, and this index makes each broker serve an (event,
        # attempt) at most once.  It deliberately survives crashes — the
        # recovered broker suppressing a copy it already served is always
        # safe because lost work is recovered by durable replay, never by
        # re-forwarding.
        self.seen: Optional[DedupIndex] = None

    @property
    def engine(self) -> MatchingEngine:
        return self.node.local_engine

    def subscribe(self, subscription: Subscription) -> None:
        if self._cluster is not None:
            self._cluster.subscribe(self.name, subscription)
        else:
            self.node.subscribe_local(subscription)

    def unsubscribe(self, subscription_id: str) -> bool:
        if self._cluster is not None:
            return self._cluster.unsubscribe(self.name, subscription_id)
        return self.node.unsubscribe_local(subscription_id)

    @property
    def queue_depth(self) -> int:
        """Queued *events* (batch mailbox entries count all their members)."""
        return self._queued_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BrokerProcess({self.name!r}, queued={self._queued_events}, "
            f"rate={self.service_rate}, batch={self.batch_size})"
        )


class _BrokerPort:
    """Network endpoint of one broker: forwarded events land in its mailbox,
    heartbeats go to the attached failure detector (if any)."""

    def __init__(self, cluster: "BrokerCluster", broker: BrokerProcess) -> None:
        self.cluster = cluster
        self.broker = broker

    def handle_message(self, message: Message, network: SimulatedNetwork) -> None:
        if message.kind == "event.forward":
            self.cluster._receive_forward(self.broker, message.payload)
        elif message.kind == "event.forward_batch":
            self.cluster._receive_forward_batch(self.broker, message.payload)
        elif message.kind == "heartbeat":
            self.cluster._receive_heartbeat(self.broker, message)
        # Unknown kinds are ignored: a crashed broker's port may still see
        # stragglers from protocols layered on later.


class BrokerCluster:
    """A set of broker processes sharing one simulation clock and metrics."""

    def __init__(
        self,
        sim: Optional[SimulationEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
        engine_factory: EngineFactory = MatchingEngine,
        service_rate: float = 2000.0,
        batch_size: int = 1,
        batch_overhead: float = 0.0,
        link_latency: float = 0.002,
        network: Optional[SimulatedNetwork] = None,
        routing_engine_factory: EngineFactory = MatchingEngine,
        mailbox_policy: str = "freeze",
        merge_ingress: bool = False,
        tracer: Optional[Tracer] = None,
        route_audit: bool = False,
        allow_cycles: bool = False,
        dedup_ttl: Optional[float] = 60.0,
    ) -> None:
        if link_latency < 0:
            raise ValueError("link_latency must be non-negative")
        if mailbox_policy not in MAILBOX_POLICIES:
            raise ValueError(f"mailbox_policy must be one of {MAILBOX_POLICIES}")
        self.sim = sim if sim is not None else SimulationEngine()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.engine_factory = engine_factory
        # Routing tables hold copies of remote subscriptions only; a plain
        # engine keeps them cheap even when local engines are sharded.
        self.routing_engine_factory = routing_engine_factory
        self.default_service_rate = service_rate
        self.default_batch_size = batch_size
        self.default_batch_overhead = batch_overhead
        self.default_mailbox_policy = mailbox_policy
        self.link_latency = link_latency
        # Cyclic (mesh) clusters route over redundant paths: the fabric
        # keeps routes on every 2-connected edge and the data plane
        # suppresses the duplicate forwards with per-broker seen-sets
        # bounded by ``dedup_ttl`` (sim seconds).
        self.allow_cycles = allow_cycles
        self.dedup_ttl = dedup_ttl
        self.fabric = RoutingFabric(
            metrics=self.metrics,
            merge_ingress=merge_ingress,
            audit=RouteAuditLog() if route_audit else None,
            allow_cycles=allow_cycles,
        )
        self.network = (
            network
            if network is not None
            else SimulatedNetwork(
                self.sim, metrics=self.metrics, default_link=Link(latency=link_latency)
            )
        )
        self.brokers: Dict[str, BrokerProcess] = {}
        self._ports: Dict[str, _BrokerPort] = {}
        self._delivery_callbacks: List[ClusterDeliveryCallback] = []
        self._delivery_batch_callbacks: List[ClusterDeliveryBatchCallback] = []
        self._lifecycle_callbacks: List[LifecycleCallback] = []
        self._link_callbacks: List[LinkEventCallback] = []
        # Attached by repro.cluster.durable.DurabilityManager.
        self._durability: Optional[object] = None
        # Intended overlay links (set by connect) and whether the routing
        # layer currently believes each is usable; a failure detector (or a
        # test) flips them with fail_link/restore_link.
        self.intended_links: Set[FrozenSet[str]] = set()
        self._link_up: Dict[FrozenSet[str], bool] = {}
        # Attached by repro.cluster.recovery.FailureDetector.
        self._detector: Optional[object] = None
        # -- observability -----------------------------------------------------
        # The tracer threads TraceContexts through the message plane; a
        # cluster without one pays a single `is not None` per publish.
        # Degraded-state counters (crashed brokers / torn-down overlay
        # links) make "is routing degraded right now" an O(1) question —
        # traced events served during a degraded window get an at-risk
        # marker so pruned-route losses stay attributable.
        self.tracer = tracer
        self._down_brokers = 0
        self._down_overlay_links = 0
        if tracer is not None:
            self.network.add_drop_listener(self._on_network_drop)

    @property
    def route_audit(self) -> Optional[RouteAuditLog]:
        """The control-plane audit log (``route_audit=True``), or None."""
        return self.fabric.audit

    # -- wiring ------------------------------------------------------------

    def add_broker(
        self,
        name: str,
        service_rate: Optional[float] = None,
        batch_size: Optional[int] = None,
        batch_overhead: Optional[float] = None,
        engine: Optional[MatchingEngine] = None,
        mailbox_policy: Optional[str] = None,
    ) -> BrokerProcess:
        if name in self.brokers:
            raise ValueError(f"broker {name!r} already exists")
        node = Broker(
            name,
            engine_factory=self.routing_engine_factory,
            local_engine=engine if engine is not None else self.engine_factory(),
        )
        broker = BrokerProcess(
            name=name,
            node=node,
            service_rate=(
                service_rate if service_rate is not None else self.default_service_rate
            ),
            batch_size=batch_size if batch_size is not None else self.default_batch_size,
            batch_overhead=(
                batch_overhead
                if batch_overhead is not None
                else self.default_batch_overhead
            ),
            mailbox_policy=(
                mailbox_policy
                if mailbox_policy is not None
                else self.default_mailbox_policy
            ),
        )
        broker._cluster = self
        if self.allow_cycles:
            broker.seen = DedupIndex(ttl=self.dedup_ttl)
        self.brokers[name] = broker
        self.fabric.add_node(name, node)
        port = _BrokerPort(self, broker)
        self._ports[name] = port
        self.network.register(name, port)
        return broker

    def connect(
        self, first: str, second: str, latency: Optional[float] = None
    ) -> None:
        """Join two brokers with a bidirectional overlay link.

        Subscription routes start propagating across the link immediately
        (subscriptions placed before the link existed are re-advertised),
        and served events are forwarded over it with ``latency`` seconds
        of one-way delay (the cluster default when not given).
        """
        if latency is not None and latency < 0:
            raise ValueError("latency must be non-negative")
        self.fabric.connect(first, second)
        pair = frozenset((first, second))
        self.intended_links.add(pair)
        self._link_up[pair] = True
        if latency is not None:
            link = Link(latency=latency)
            self.network.set_link(first, second, link)
            self.network.set_link(second, first, link)

    def subscribe(self, broker_name: str, subscription: Subscription) -> None:
        """Place a subscription at a broker and propagate its route."""
        self._broker(broker_name)
        self.fabric.subscribe_at(broker_name, subscription)

    def subscribe_many(self, broker_name: str, subscriptions: Iterable[Subscription]):
        """Batch-place subscriptions at a broker: one advertisement walk
        through the fabric for the whole batch (see
        ``RoutingFabric.subscribe_many_at``).  Returns the per-subscription
        ``SubscribeOutcome`` list."""
        self._broker(broker_name)
        return self.fabric.subscribe_many_at(broker_name, subscriptions)

    def unsubscribe(self, broker_name: str, subscription_id: str) -> bool:
        """Remove a subscription homed at ``broker_name`` (with routing
        repair for subscriptions its covering had pruned)."""
        self._broker(broker_name)
        return self.fabric.unsubscribe_at(broker_name, subscription_id)

    def unsubscribe_many(
        self, broker_name: str, subscription_ids: Iterable[str]
    ) -> List[bool]:
        """Batch-retract subscriptions homed at ``broker_name``: one
        readmission flush per touched edge for the whole batch (see
        ``RoutingFabric.unsubscribe_many_at``); snapshot-identical to
        :meth:`unsubscribe` in a loop.  Returns per-id results."""
        self._broker(broker_name)
        return self.fabric.unsubscribe_many_at(broker_name, subscription_ids)

    def on_delivery(self, callback: ClusterDeliveryCallback) -> None:
        """Register a callback invoked per delivery
        (broker name, subscriber, event, matching subscription)."""
        self._delivery_callbacks.append(callback)

    def on_delivery_batch(self, callback: ClusterDeliveryBatchCallback) -> None:
        """Register a callback invoked once per event with its full match
        row (broker name, event, matched subscriptions).

        The vectorized form of :meth:`on_delivery` — the serve loop calls
        it once per event instead of once per (event, subscription) pair,
        which is where most of the residual per-event cost of the routed
        path lives at high fan-out.
        """
        self._delivery_batch_callbacks.append(callback)

    def on_lifecycle(self, callback: LifecycleCallback) -> None:
        """Register a callback invoked on broker crash/recovery
        (kind ``"crashed"``/``"recovered"``, broker name, sim time)."""
        self._lifecycle_callbacks.append(callback)

    def on_link_event(self, callback: LinkEventCallback) -> None:
        """Register a callback invoked when an overlay link is torn down
        or restored (kind ``"failed"``/``"restored"``, endpoints, sim
        time).  This is the detector-driven signal — it fires when the
        routing layer *learns* of a failure, not when the fault is
        injected — which is what replication failover keys off."""
        self._link_callbacks.append(callback)

    def attach_durability(self, manager: object) -> None:
        """Called by :class:`repro.cluster.durable.DurabilityManager` to
        hook publish logging / deferral / applied-marking into the data
        plane.  One manager per cluster."""
        if self._durability is not None:
            raise ValueError("a DurabilityManager is already attached")
        self._durability = manager

    def _broker(self, name: str) -> BrokerProcess:
        broker = self.brokers.get(name)
        if broker is None:
            raise KeyError(f"unknown broker {name!r}")
        return broker

    # -- fault tolerance ---------------------------------------------------

    def crash_broker(self, name: str) -> None:
        """Kill a broker process at the current sim time.

        The broker leaves the network (in-flight and future messages to it
        become counted drops), the batch in service is lost, and its
        mailbox follows the broker's ``mailbox_policy``: ``freeze`` keeps
        queued events for post-recovery service, ``drop`` loses them.
        Routing state is *not* touched here — neighbours keep forwarding
        into the void until a :class:`~repro.cluster.recovery.FailureDetector`
        (or the test driver, via :meth:`fail_link`) notices and repairs.
        """
        broker = self._broker(name)
        if not broker.up:
            return
        now = self.sim.now
        broker.up = False
        broker.incarnation += 1
        broker.crashed_at = now
        broker.stats.crashes += 1
        self._down_brokers += 1
        if self.tracer is not None:
            self.tracer.note_anomaly(f"crash:{name}", now)
        # The batch being served existed only in the dead process.
        if broker._in_service is not None:
            self._count_lost(broker, len(broker._in_service))
            self._trace_lost_batch(broker._in_service, name, "crashed_in_service")
            broker._in_service = None
        broker.busy = False
        if broker.mailbox_policy == "drop" and broker.mailbox:
            queued = _flatten_entries(broker.mailbox)
            self._count_lost(broker, len(queued))
            self._trace_lost_batch(queued, name, "mailbox_dropped")
            broker.mailbox.clear()
            broker._queued_events = 0
        self.metrics.gauge(f"cluster.queue_depth.{name}").set(broker.queue_depth)
        self.network.unregister(name)
        self.metrics.counter("cluster.broker_crashes").increment()
        for callback in self._lifecycle_callbacks:
            callback("crashed", name, now)

    def recover_broker(self, name: str) -> None:
        """Restart a crashed broker at the current sim time.

        The broker rejoins the network and resumes serving whatever its
        mailbox froze.  Its local subscription set survived the crash
        (durable subscription storage); routes toward it are re-advertised
        when the failure detector restores its links — or immediately, if
        no detector ever tore them down.
        """
        broker = self._broker(name)
        if broker.up:
            return
        now = self.sim.now
        broker.up = True
        if broker.crashed_at is not None:
            window = now - broker.crashed_at
            broker.stats.downtime += window
            self.metrics.histogram("cluster.unavailability").observe(window)
        broker.crashed_at = None
        self._down_brokers -= 1
        self.network.register(name, self._ports[name])
        self.metrics.counter("cluster.broker_recoveries").increment()
        for callback in self._lifecycle_callbacks:
            callback("recovered", name, now)
        self._maybe_clear_anomaly()
        self._start_service(broker)

    def crash_at(self, time: float, name: str) -> None:
        self.sim.schedule_at(
            time, lambda _engine: self.crash_broker(name), label=f"crash:{name}"
        )

    def recover_at(self, time: float, name: str) -> None:
        self.sim.schedule_at(
            time, lambda _engine: self.recover_broker(name), label=f"recover:{name}"
        )

    def fail_link(self, first: str, second: str) -> bool:
        """Routing-level link failure: tear the overlay link down and
        repair routes on both sides (what a failure detector does once it
        suspects the far end).  Returns ``False`` if already down."""
        pair = frozenset((first, second))
        if not self._link_up.get(pair, False):
            return False
        self._link_up[pair] = False
        self._down_overlay_links += 1
        if self.tracer is not None:
            self.tracer.note_anomaly(f"link_down:{first}-{second}", self.sim.now)
        self.fabric.disconnect(first, second)
        self.metrics.counter("cluster.link_failures").increment()
        for callback in self._link_callbacks:
            callback("failed", first, second, self.sim.now)
        return True

    def restore_link(self, first: str, second: str) -> bool:
        """Re-join a torn-down overlay link; the surviving subscription
        set re-advertises across it so routing state converges to what a
        freshly built topology would hold.  Returns ``False`` if up."""
        pair = frozenset((first, second))
        if pair not in self.intended_links or self._link_up.get(pair, False):
            return False
        self._link_up[pair] = True
        if self.fabric.allow_cycles:
            # Mesh mode: a restored edge is re-added even when a path
            # already exists — redundant paths are the point — and the
            # fabric's retopology repair recanonicalizes routes.
            self.fabric.connect(first, second)
        elif not self.fabric.path_exists(first, second):
            # The fabric's edge-merge advertisement is canonical (each
            # side crosses the restored link with issue-order-aware
            # pruning), so failback is an incremental merge — no
            # component rebuild — and still converges to exactly the
            # fresh-build snapshot.
            self.fabric.connect(first, second)
        else:
            # Rare: other restored links already reconnected the
            # endpoints; canonicalize the healed component the slow way.
            self.fabric.reroute_component(first)
        self._down_overlay_links -= 1
        self.metrics.counter("cluster.link_restores").increment()
        for callback in self._link_callbacks:
            callback("restored", first, second, self.sim.now)
        self._maybe_clear_anomaly()
        return True

    def overlay_link_is_up(self, first: str, second: str) -> bool:
        return self._link_up.get(frozenset((first, second)), False)

    @property
    def degraded(self) -> bool:
        """True while any broker is down or any overlay link is torn down."""
        return self._down_brokers > 0 or self._down_overlay_links > 0

    def _maybe_clear_anomaly(self) -> None:
        """Leave the tracer's always-sample window once the cluster is
        healthy again: all brokers up, all overlay links restored, and no
        physical link still forced down."""
        if self.tracer is None or self.degraded:
            return
        if self.network.down_links():
            return
        self.tracer.clear_anomaly()

    def _trace_lost_batch(
        self,
        entries: Iterable[Tuple[float, EventEnvelope]],
        broker_name: str,
        cause: str,
    ) -> None:
        """Terminal drop spans for every traced envelope in a lost batch."""
        tracer = self.tracer
        if tracer is None:
            return
        now = self.sim.now
        broker = self.brokers[broker_name]
        for _enqueued_at, envelope in entries:
            if envelope.trace is not None:
                tracer.record_drop(
                    envelope.trace,
                    now,
                    broker_name,
                    cause=cause,
                    incarnation=broker.incarnation,
                    hops=envelope.hops,
                )

    def _on_network_drop(self, message: Message) -> None:
        """Network drop listener: a dropped ``event.forward`` (or
        ``event.forward_batch``) carrying traced envelopes becomes one
        terminal drop span *per traced member* naming the link and the
        reason (downed link vs gone destination vs random loss)."""
        if message.kind == "event.forward":
            envelopes = (message.payload,)
        elif message.kind == "event.forward_batch":
            envelopes = tuple(message.payload.envelopes)
        else:
            return
        if all(getattr(envelope, "trace", None) is None for envelope in envelopes):
            return
        if not self.network.has_node(message.destination):
            reason = "destination_down"
        elif not self.network.link_is_up(message.source, message.destination):
            reason = "link_down"
        else:
            reason = "loss"
        now = self.sim.now
        for envelope in envelopes:
            trace = getattr(envelope, "trace", None)
            if trace is None:
                continue
            self.tracer.record_drop(
                trace,
                now,
                message.source,
                cause="forward_dropped",
                link=f"{message.source}->{message.destination}",
                reason=reason,
                hops=envelope.hops,
            )
        self.tracer.note_anomaly(
            f"forward_dropped:{message.source}->{message.destination}", now
        )

    def _count_lost(self, broker: BrokerProcess, count: int) -> None:
        if count <= 0:
            return
        broker.stats.events_lost += count
        self.metrics.counter("cluster.events_lost").increment(count)

    def _receive_heartbeat(self, broker: BrokerProcess, message: Message) -> None:
        if self._detector is not None and broker.up:
            self._detector.heartbeat_received(broker.name, message.source)

    # -- event flow --------------------------------------------------------

    def publish(self, broker_name: str, event: Event, attempt: int = 0) -> None:
        """Enqueue an event into a broker's mailbox at the current sim time.

        Publishing to a crashed broker is a counted drop
        (``cluster.publishes_dropped``): the client's connection target is
        simply gone, exactly the unavailability C2 measures.  With a
        :class:`~repro.cluster.durable.DurabilityManager` attached, the
        publication is instead *deferred* — logged now, replayed when the
        broker recovers — and ``attempt`` (used by replays) keys the mesh
        dedup so a redelivery traverses the overlay again.
        """
        broker = self._broker(broker_name)
        now = self.sim.now
        trace = None
        if self.tracer is not None:
            trace = self.tracer.begin_trace(event, broker_name, now)
        durability = self._durability
        if not broker.up:
            if durability is not None:
                durability.record_deferred(broker_name, event, now)
                self.metrics.counter("cluster.publishes_deferred").increment()
                if trace is not None:
                    self.tracer.record_drop(
                        trace,
                        now,
                        broker_name,
                        cause="publish_deferred",
                        definite=False,
                    )
                return
            self.metrics.counter("cluster.publishes_dropped").increment()
            if trace is not None:
                self.tracer.record_drop(
                    trace, now, broker_name, cause="publish_target_down"
                )
            return
        if durability is not None and attempt == 0:
            durability.record_publish(broker_name, event, now)
        envelope = EventEnvelope(
            event=event, origin_time=now, trace=trace, attempt=attempt
        )
        if broker.seen is not None:
            # Register the ingress sighting so a mesh cycle looping the
            # event back to its origin broker is suppressed there.
            broker.seen.first_sighting((event.event_id, attempt), now)
        self._enqueue(broker, envelope)

    def publish_at(self, time: float, broker_name: str, event: Event) -> None:
        """Schedule a publication at an absolute simulation time."""
        self.sim.schedule_at(
            time,
            lambda _engine: self.publish(broker_name, event),
            label=f"publish:{broker_name}",
        )

    def publish_many(self, broker_name: str, events: Iterable[Event]) -> int:
        """Enqueue a batch of events as ONE mailbox entry at a broker.

        Delivery-identical to :meth:`publish` in a loop (same traces, same
        per-event delivery sets and callbacks, pinned by the property
        suite) but the whole batch pays one mailbox entry, one dispatch
        and one service-cycle overhead, is matched through the batched
        engine path, and its forwards coalesce per next-hop link.
        Publishing to a crashed broker drops the entire batch (counted in
        ``cluster.publishes_dropped``, one drop span per sampled trace) —
        or defers it, when a durability manager is attached.  Returns the
        number of events enqueued (0 when the broker is down or the batch
        is empty).
        """
        broker = self._broker(broker_name)
        batch = list(events)
        if not batch:
            return 0
        now = self.sim.now
        tracer = self.tracer
        traces: List[Optional[TraceContext]]
        if tracer is not None:
            traces = [tracer.begin_trace(event, broker_name, now) for event in batch]
        else:
            traces = [None] * len(batch)
        durability = self._durability
        if not broker.up:
            if durability is not None:
                for event in batch:
                    durability.record_deferred(broker_name, event, now)
                self.metrics.counter("cluster.publishes_deferred").increment(
                    len(batch)
                )
                if tracer is not None:
                    for trace in traces:
                        if trace is not None:
                            tracer.record_drop(
                                trace,
                                now,
                                broker_name,
                                cause="publish_deferred",
                                definite=False,
                            )
                return 0
            self.metrics.counter("cluster.publishes_dropped").increment(len(batch))
            if tracer is not None:
                for trace in traces:
                    if trace is not None:
                        tracer.record_drop(
                            trace, now, broker_name, cause="publish_target_down"
                        )
            return 0
        if durability is not None:
            for event in batch:
                durability.record_publish(broker_name, event, now)
        envelopes = [
            EventEnvelope(event=event, origin_time=now, trace=trace)
            for event, trace in zip(batch, traces)
        ]
        if broker.seen is not None:
            for event in batch:
                broker.seen.first_sighting((event.event_id, 0), now)
        self._enqueue_batch(broker, envelopes)
        return len(batch)

    def publish_many_at(
        self, time: float, broker_name: str, events: Iterable[Event]
    ) -> None:
        """Schedule a batched publication at an absolute simulation time."""
        batch = list(events)
        self.sim.schedule_at(
            time,
            lambda _engine: self.publish_many(broker_name, batch),
            label=f"publish_many:{broker_name}",
        )

    def _enqueue(self, broker: BrokerProcess, envelope: EventEnvelope) -> None:
        broker.mailbox.append((self.sim.now, envelope))
        broker._queued_events += 1
        broker.stats.events_enqueued += 1
        self.metrics.counter("cluster.events_enqueued").increment()
        self.metrics.gauge(f"cluster.queue_depth.{broker.name}").set(
            broker.queue_depth
        )
        self._start_service(broker)

    def _enqueue_batch(
        self, broker: BrokerProcess, envelopes: List[EventEnvelope]
    ) -> None:
        """Enqueue envelopes as one mailbox entry (singletons take the
        per-event entry shape so the wire/queue format stays unchanged)."""
        if len(envelopes) == 1:
            self._enqueue(broker, envelopes[0])
            return
        broker.mailbox.append((self.sim.now, BatchEnvelope(envelopes)))
        broker._queued_events += len(envelopes)
        broker.stats.events_enqueued += len(envelopes)
        self.metrics.counter("cluster.events_enqueued").increment(len(envelopes))
        self.metrics.gauge(f"cluster.queue_depth.{broker.name}").set(
            broker.queue_depth
        )
        self._start_service(broker)

    def _suppress_duplicate(
        self, broker: BrokerProcess, envelope: EventEnvelope
    ) -> None:
        """Account one duplicate-suppressed forward arrival.

        Suppression is *not* a loss: it is counted under its own
        ``network.duplicates_suppressed`` metric (never through the
        network drop path, whose listeners would mis-attribute it), and a
        traced envelope gets a benign terminal ``dedup`` span so the
        suppressed branch of its walk stays explained."""
        broker.stats.duplicates_suppressed += 1
        self.network.note_duplicate_suppressed(
            envelope.came_from, broker.name, kind="event.forward"
        )
        if self.tracer is not None and envelope.trace is not None:
            now = self.sim.now
            self.tracer.record_span(
                "dedup",
                envelope.trace,
                start=now,
                end=now,
                broker=broker.name,
                hops=envelope.hops,
                attempt=envelope.attempt,
            )

    def _accept_forward(
        self, broker: BrokerProcess, envelope: EventEnvelope
    ) -> bool:
        """Mesh dedup gate: False (and accounted) for a duplicate arrival."""
        seen = broker.seen
        if seen is None:
            return True
        if seen.first_sighting(
            (envelope.event.event_id, envelope.attempt), self.sim.now
        ):
            return True
        self._suppress_duplicate(broker, envelope)
        return False

    def _receive_forward(self, broker: BrokerProcess, envelope: EventEnvelope) -> None:
        if not broker.up:  # pragma: no cover - the network drops these first
            self._count_lost(broker, 1)
            if self.tracer is not None and envelope.trace is not None:
                self.tracer.record_drop(
                    envelope.trace,
                    self.sim.now,
                    broker.name,
                    cause="arrived_at_down_broker",
                )
            return
        if not self._accept_forward(broker, envelope):
            return
        broker.stats.forwards_received += 1
        self._enqueue(broker, envelope)

    def _receive_forward_batch(
        self, broker: BrokerProcess, batch: BatchEnvelope
    ) -> None:
        envelopes = batch.envelopes
        if not broker.up:  # pragma: no cover - the network drops these first
            self._count_lost(broker, len(envelopes))
            if self.tracer is not None:
                for envelope in envelopes:
                    if envelope.trace is not None:
                        self.tracer.record_drop(
                            envelope.trace,
                            self.sim.now,
                            broker.name,
                            cause="arrived_at_down_broker",
                        )
            return
        if broker.seen is not None:
            envelopes = [
                envelope
                for envelope in envelopes
                if self._accept_forward(broker, envelope)
            ]
            if not envelopes:
                return
        broker.stats.forwards_received += len(envelopes)
        self._enqueue_batch(broker, envelopes)

    def _start_service(self, broker: BrokerProcess) -> None:
        if not broker.up or broker.busy or not broker.mailbox:
            return
        broker.busy = True
        # Defer the batch draw by one zero-delay dispatch event: the sim
        # fires same-time events FIFO, so publications landing at the same
        # instant coalesce into one service cycle instead of the first
        # arrival starting a batch of one.  The incarnation stamp makes
        # dispatches scheduled by a previous life of the broker inert.
        incarnation = broker.incarnation
        self.sim.schedule_in(
            0.0,
            lambda _engine: self._dispatch(broker, incarnation),
            label=f"dispatch:{broker.name}",
        )

    def _dispatch(self, broker: BrokerProcess, incarnation: int) -> None:
        if not broker.up or incarnation != broker.incarnation:
            return
        if not broker.mailbox:
            broker.busy = False
            return
        # The batch is drawn (and leaves the queue) when service begins;
        # its size fixes the cycle's service time.  batch_size counts
        # *mailbox entries*, so a publish_many batch (one entry) is served
        # whole in one cycle; `_in_service` holds the flattened per-event
        # view so crash accounting counts a lost in-service batch by
        # events, exactly as the per-event path did.
        entries = [
            broker.mailbox.popleft()
            for _ in range(min(broker.batch_size, len(broker.mailbox)))
        ]
        batch = _flatten_entries(entries)
        broker._queued_events -= len(batch)
        broker._in_service = batch
        service_time = broker.batch_overhead + len(batch) / broker.service_rate
        start = self.sim.now
        broker.stats.service_cycles += 1
        broker.stats.busy_time += service_time
        self.metrics.gauge(f"cluster.queue_depth.{broker.name}").set(
            broker.queue_depth
        )
        self.metrics.histogram("cluster.service_batch").observe(len(batch))
        tracer = self.tracer
        for enqueued_at, envelope in batch:
            self.metrics.histogram("cluster.wait_time").observe(start - enqueued_at)
            if tracer is not None and envelope.trace is not None:
                # Mailbox wait: from enqueue to this service cycle's start.
                envelope.trace.parent_id = tracer.record_span(
                    "queue",
                    envelope.trace,
                    start=enqueued_at,
                    end=start,
                    broker=broker.name,
                    batch_size=len(batch),
                    hops=envelope.hops,
                    incarnation=broker.incarnation,
                )

        def complete(_engine: SimulationEngine) -> None:
            self._complete_service(broker, batch, incarnation, start)

        self.sim.schedule_in(service_time, complete, label=f"serve:{broker.name}")

    def _complete_service(
        self,
        broker: BrokerProcess,
        batch: List[Tuple[float, EventEnvelope]],
        incarnation: int,
        started_at: float,
    ) -> None:
        if not broker.up or incarnation != broker.incarnation:
            # The broker died mid-service; the batch was counted lost at
            # crash time and must not produce deliveries from beyond.
            return
        broker._in_service = None
        now = self.sim.now
        tracer = self.tracer
        events = [envelope.event for _at, envelope in batch]
        # Cross-cycle probe/result caching when the engine supports it
        # (plain MatchingEngine); sharded/naive engines take their own
        # match_batch path.  The cache self-invalidates on any engine
        # mutation, so delivery results are identical either way.
        match_cached = getattr(broker.engine, "match_batch_cached", None)
        if match_cached is not None:
            matches = match_cached(events, broker._match_cache)
        else:
            matches = broker.engine.match_batch(events)
        deliveries = 0
        outboxes: Dict[str, List[EventEnvelope]] = {}
        # Vectorized fan-out: metric handles hoisted out of the loop, one
        # observe_many per event (every subscriber shares the envelope's
        # hop count and origin time), and per-delivery callbacks skipped
        # wholesale when only batch callbacks are registered.
        queue_delay = self.metrics.histogram("cluster.queue_delay")
        delivery_hops = self.metrics.histogram("cluster.delivery_hops")
        e2e_delay = self.metrics.histogram("cluster.e2e_delay")
        per_delivery = self._delivery_callbacks
        per_batch = self._delivery_batch_callbacks
        for (enqueued_at, envelope), row in zip(batch, matches):
            deliveries += len(row)
            queue_delay.observe(now - enqueued_at)
            if tracer is not None and envelope.trace is not None:
                match_span = tracer.record_span(
                    "match",
                    envelope.trace,
                    start=started_at,
                    end=now,
                    broker=broker.name,
                    batch_size=len(batch),
                    matches=len(row),
                    shards=getattr(broker.engine, "num_shards", 1),
                    incarnation=broker.incarnation,
                )
                envelope.trace.parent_id = match_span
                if row:
                    subscribers = [s.subscription_id for s in row[:16]]
                    tracer.record_span(
                        "deliver",
                        envelope.trace,
                        start=now,
                        end=now,
                        broker=broker.name,
                        parent_id=match_span,
                        deliveries=len(row),
                        subscriptions=subscribers,
                        truncated=len(row) > 16,
                    )
            if row:
                fan_out = len(row)
                delivery_hops.observe_many(envelope.hops, fan_out)
                e2e_delay.observe_many(now - envelope.origin_time, fan_out)
                for batch_callback in per_batch:
                    batch_callback(broker.name, envelope.event, row)
                if per_delivery:
                    event = envelope.event
                    for subscription in row:
                        for callback in per_delivery:
                            callback(
                                broker.name,
                                subscription.subscriber,
                                event,
                                subscription,
                            )
            self._forward_collect(broker, envelope, outboxes)
        if outboxes:
            self._flush_forwards(broker, outboxes)
        durability = self._durability
        if durability is not None:
            # Ingress envelopes (no came_from) are this broker's logged
            # publications: served means applied — a crash from here on
            # no longer owes them a replay *from this broker's log*.
            for _enqueued_at, envelope in batch:
                if envelope.came_from is None:
                    durability.mark_applied(broker.name, envelope.event.event_id)
        broker.stats.events_processed += len(batch)
        broker.stats.deliveries += deliveries
        self.metrics.counter("cluster.events_processed").increment(len(batch))
        self.metrics.counter("cluster.deliveries").increment(deliveries)
        broker.busy = False
        self._start_service(broker)

    def _forward_collect(
        self,
        broker: BrokerProcess,
        envelope: EventEnvelope,
        outboxes: Dict[str, List[EventEnvelope]],
    ) -> None:
        """Resolve the served event's next hops and stage it per link.

        Next hops are resolved at each event's own point in the service
        order — through the fabric's versioned route-set cache, so a
        control-plane mutation fired by an earlier event's delivery
        callback (a mid-batch retraction) invalidates cached routes
        before this event's fan-out is computed, exactly matching the
        sequential per-event path.  Forward accounting stays per-event.
        """
        next_hops = self.fabric.next_hops(
            broker.name, envelope.event, came_from=envelope.came_from
        )
        tracer = self.tracer
        trace = envelope.trace
        if tracer is not None and trace is not None and self.degraded:
            # Served while routing was degraded: routes the healthy fabric
            # would hold may be pruned, silently ending this event's walk
            # short of some subscribers.  The at-risk marker keeps such
            # losses attributable — harmless if delivery still completes.
            tracer.record_drop(
                trace,
                self.sim.now,
                broker.name,
                cause="routing_partitioned",
                definite=False,
                down_brokers=self._down_brokers,
                down_overlay_links=self._down_overlay_links,
            )
        if not next_hops:
            return
        for neighbour in next_hops:
            broker.stats.events_forwarded += 1
            self.metrics.counter("cluster.events_forwarded").increment()
            staged = outboxes.get(neighbour)
            if staged is None:
                staged = outboxes[neighbour] = []
            staged.append(envelope)

    def _flush_forwards(
        self, broker: BrokerProcess, outboxes: Dict[str, List[EventEnvelope]]
    ) -> None:
        """Send each link's staged events as one coalesced message.

        One network message (and one latency charge) per link per service
        cycle; every traced member still gets its own ``forward`` span
        (annotated with the coalesced count) and a forked child context,
        so span chains and loss attribution stay per-event.  A link with
        a single staged event uses the legacy ``event.forward`` shape.
        """
        tracer = self.tracer
        now = self.sim.now
        for neighbour in sorted(outboxes):
            parents = outboxes[neighbour]
            total_bytes = sum(parent.event.size_bytes() for parent in parents)
            link = None
            children: List[EventEnvelope] = []
            for parent in parents:
                child = None
                if tracer is not None and parent.trace is not None:
                    if link is None:
                        link = self.network.link_for(broker.name, neighbour)
                    span_id = tracer.record_span(
                        "forward",
                        parent.trace,
                        start=now,
                        end=now + link.transfer_time(total_bytes),
                        broker=broker.name,
                        link=f"{broker.name}->{neighbour}",
                        latency=link.latency,
                        hops=parent.hops + 1,
                        coalesced=len(parents),
                    )
                    child = tracer.fork(parent.trace, span_id)
                children.append(
                    EventEnvelope(
                        event=parent.event,
                        origin_time=parent.origin_time,
                        hops=parent.hops + 1,
                        came_from=broker.name,
                        trace=child,
                        attempt=parent.attempt,
                    )
                )
            if len(children) == 1:
                self.network.send(
                    broker.name,
                    neighbour,
                    kind="event.forward",
                    payload=children[0],
                    size_bytes=total_bytes,
                )
            else:
                self.network.send(
                    broker.name,
                    neighbour,
                    kind="event.forward_batch",
                    payload=BatchEnvelope(children),
                    size_bytes=total_bytes,
                )

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drive the simulation; returns the number of sim events executed."""
        return self.sim.run(until=until, max_events=max_events)

    # -- reporting ---------------------------------------------------------

    def throughput(self) -> float:
        """Events processed per simulated second (cluster-wide)."""
        if self.sim.now <= 0:
            return 0.0
        processed = self.metrics.counter("cluster.events_processed").value
        return processed / self.sim.now

    def stats_by_broker(self) -> Dict[str, Dict[str, float]]:
        return {
            name: broker.stats.as_dict()
            for name, broker in sorted(self.brokers.items())
        }

    def routing_stats_by_broker(self) -> Dict[str, Dict[str, int]]:
        """Control-plane accounting (subscription propagation) per broker."""
        return {
            name: broker.node.stats.as_dict()
            for name, broker in sorted(self.brokers.items())
        }

    def total_routing_state(self) -> int:
        return self.fabric.total_routing_state()


# Topologies whose edge lists contain cycles: clusters carrying them must
# be built with ``allow_cycles=True`` (redundant-mesh routing + dedup).
CYCLIC_TOPOLOGIES = ("ring", "mesh")


def topology_is_cyclic(topology: str) -> bool:
    """True for topology shapes that need a cycle-tolerant fabric."""
    return topology in CYCLIC_TOPOLOGIES


def topology_edges(topology: str, num_brokers: int) -> List[Tuple[int, int]]:
    """The edge list of a ``line``/``star``/``tree``/``ring``/``mesh``
    topology over broker indices ``0..num_brokers-1``.

    This is the single topology-shape definition shared by the sim-clock
    cluster (:func:`build_cluster_topology`) and the wire launcher
    (:func:`repro.net.launcher.topology_specs`), so the oracle compares the
    same graph on both paths.  ``tree`` is binary, filled level by level;
    ``star`` puts broker 0 at the hub.  ``ring`` is the line plus its
    closing edge (2-connected: any single link loss leaves a path);
    ``mesh`` adds a chord to every second neighbour on top of the ring
    (survives any single broker loss too).  Both degenerate to a line
    below 3 brokers.
    """
    if num_brokers < 1:
        raise ValueError("num_brokers must be at least 1")
    if topology == "line":
        return [(index, index + 1) for index in range(num_brokers - 1)]
    if topology == "star":
        return [(0, index) for index in range(1, num_brokers)]
    if topology == "tree":
        return [((index - 1) // 2, index) for index in range(1, num_brokers)]
    if topology == "ring":
        if num_brokers < 3:
            return [(index, index + 1) for index in range(num_brokers - 1)]
        return [(index, (index + 1) % num_brokers) for index in range(num_brokers)]
    if topology == "mesh":
        if num_brokers < 3:
            return [(index, index + 1) for index in range(num_brokers - 1)]
        seen: Set[Tuple[int, int]] = set()
        edges: List[Tuple[int, int]] = []
        for index in range(num_brokers):
            for step in (1, 2):
                other = (index + step) % num_brokers
                if other == index:
                    continue
                edge = (min(index, other), max(index, other))
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
        return edges
    raise ValueError(f"unknown topology {topology!r} (line|star|tree|ring|mesh)")


def build_cluster_topology(
    topology: str,
    num_brokers: int,
    cluster: BrokerCluster,
    latency: Optional[float] = None,
) -> List[str]:
    """Add ``num_brokers`` brokers wired as
    ``line``/``star``/``tree``/``ring``/``mesh``.

    Returns the broker names in creation order (shapes defined by
    :func:`topology_edges`).  Cyclic shapes require a cluster built with
    ``allow_cycles=True`` (checked here so the failure is immediate and
    named, not a confusing acyclicity error mid-wiring).
    """
    if topology_is_cyclic(topology) and not cluster.allow_cycles:
        raise ValueError(
            f"topology {topology!r} is cyclic: build the cluster with "
            "allow_cycles=True"
        )
    edges = topology_edges(topology, num_brokers)
    names = [f"b{index}" for index in range(num_brokers)]
    for name in names:
        cluster.add_broker(name)
    for left, right in edges:
        cluster.connect(names[left], names[right], latency=latency)
    return names
