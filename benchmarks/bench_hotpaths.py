"""Hot-path micro-benchmarks (perf-regression harness).

These pin the cost of the two inner loops everything else sits on:

* inverted-index mutation churn (add/remove cycles, as the crawler
  re-indexes pages and spam pages are dropped);
* BM25 top-k ranking over a mid-sized archive (the video-story ranking
  path of experiment E2);
* single-event subscription matching (the §5.3 substrate hot loop);
* range-heavy matching, where every subscription carries inequality
  predicates and the engine cannot lean on the equality hash index.

Run ``python benchmarks/run_hotpath_bench.py --label <name>`` to record a
named snapshot into ``BENCH_PR1.json``; see PERFORMANCE.md.
"""

from __future__ import annotations

from repro.experiments.substrate import _make_event, _make_subscription
from repro.ir.index import Document, InvertedIndex
from repro.ir.ranking import BM25Ranker
from repro.pubsub.events import Event
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.subscriptions import Operator, Predicate, Subscription
from repro.sim.rng import SeededRNG, ZipfSampler


def _synthetic_documents(
    num_docs: int, vocab_size: int = 1200, words_per_doc: int = 100, seed: int = 17
):
    """Zipf-distributed synthetic documents (realistic term skew)."""
    rng = SeededRNG(seed)
    sampler = ZipfSampler(vocab_size, 1.05, rng.fork("zipf"))
    vocabulary = [f"term{i:04d}" for i in range(vocab_size)]
    documents = []
    for index in range(num_docs):
        words = [vocabulary[sampler.sample()] for _ in range(words_per_doc)]
        documents.append(Document(doc_id=f"doc{index:05d}", text=" ".join(words)))
    return documents


def _build_index(num_docs: int) -> InvertedIndex:
    index = InvertedIndex()
    for document in _synthetic_documents(num_docs):
        index.add(document)
    return index


def test_hp_index_add_remove_churn(benchmark):
    """Remove + re-add a batch of documents against a 1.5k-doc index.

    The seed ``remove()`` scanned the whole vocabulary per call; the
    optimized index walks only the document's own terms.
    """
    index = _build_index(1500)
    churn = [index.document(f"doc{i:05d}") for i in range(0, 1500, 15)]

    def run():
        for document in churn:
            index.remove(document.doc_id)
        for document in churn:
            index.add(document)
        return index.num_documents

    result = benchmark(run)
    assert result == 1500


def test_hp_bm25_topk_rank(benchmark):
    """BM25 top-10 over a 2k-document archive with an 8-term query."""
    index = _build_index(2000)
    ranker = BM25Ranker(index)
    # Mid-frequency terms: selective enough to score, common enough to
    # produce large candidate sets (the expensive case for full sorting).
    query = [f"term{i:04d}" for i in (3, 7, 12, 20, 33, 50, 80, 130)]

    results = benchmark(lambda: ranker.rank(query, limit=10))
    assert len(results) == 10
    assert results[0].rank == 1


def test_hp_single_event_match(benchmark):
    """One event against 10k mixed equality/range subscriptions (§5.3)."""
    rng = SeededRNG(23)
    topics = [f"topic{i:03d}" for i in range(50)]
    engine = MatchingEngine()
    for index in range(10_000):
        engine.add(_make_subscription(rng, topics, subscriber=f"user{index % 200}"))
    event = _make_event(rng, topics, timestamp=0.0)

    matched = benchmark(lambda: engine.match(event))
    assert isinstance(matched, list)


def test_hp_range_heavy_match(benchmark):
    """One event against 5k subscriptions that are *all* range predicates.

    No equality predicates at all, so the seed engine degenerated to a
    linear scan with two ``Predicate.matches`` calls per subscription; the
    optimized engine answers each bound with a bisect over a sorted index.
    """
    rng = SeededRNG(31)
    engine = MatchingEngine()
    for index in range(5_000):
        low = rng.randint(0, 500)
        high = low + rng.randint(10, 200)
        engine.add(
            Subscription(
                event_type="ticker.quote",
                predicates=(
                    Predicate("price", Operator.GE, low),
                    Predicate("price", Operator.LT, high),
                ),
                subscriber=f"trader{index % 100}",
            )
        )
    event = Event(event_type="ticker.quote", attributes={"price": 250, "venue": "X"})

    matched = benchmark(lambda: engine.match(event))
    assert len(matched) > 0
    assert all(sub.matches(event) for sub in matched)
