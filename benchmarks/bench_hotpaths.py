"""Hot-path micro-benchmarks (perf-regression harness).

These pin the cost of the two inner loops everything else sits on:

* inverted-index mutation churn (add/remove cycles, as the crawler
  re-indexes pages and spam pages are dropped);
* analyzer throughput on repeated text (the memoized tokenize+stem path);
* BM25 top-k ranking over a mid-sized archive (the video-story ranking
  path of experiment E2);
* single-event subscription matching (the §5.3 substrate hot loop);
* range-heavy matching, where every subscription carries inequality
  predicates and the engine cannot lean on the equality hash index;
* the cluster layer's sharded / batched publish paths versus sequential
  single-engine publishing (PR 2; see the "Cluster layer" section of
  PERFORMANCE.md);
* the message plane's routed publish path (mailboxes + content-routed
  forwarding over simulated links) and the multiprocess/thread shard
  executors versus the in-process sharded batch (PR 3/PR 4; see
  "Message plane");
* the fault-tolerance machinery: one full crash → detect → repair →
  failback cycle with thousands of subscriptions of routing state to
  rebuild (PR 4; see "Failure & churn");
* the control-plane fast path: unsubscribe/re-issue churn against tens
  of thousands of routed subscriptions, bounded by the reverse route
  index and pruned-by graph instead of full-table covers() sweeps
  (PR 5; see "Control plane");
* the million-subscription engine: a full 1M-subscription resident set
  (interned predicate pool + columnar slot storage) with RSS and
  subscribe/unsubscribe latency recorded, and batched advertisement
  placement versus a subscribe loop at 100k (PR 6; see "Scale");
* the batched data plane: ``publish_many`` through the routed cluster
  (one mailbox entry per batch, cached route sets, coalesced per-link
  forwards) versus the sequential per-event publish at 10k+ events
  (PR 8; see "Data plane").

Run ``python benchmarks/run_hotpath_bench.py --label <name>`` to record a
named snapshot (``prN`` labels land in ``BENCH_PRN.json``); see
PERFORMANCE.md.
"""

from __future__ import annotations

from repro.cluster import ShardedMatchingEngine
from repro.experiments.substrate import make_event, make_subscription
from repro.ir.index import Document, InvertedIndex
from repro.ir.ranking import BM25Ranker
from repro.ir.tokenize import TextAnalyzer
from repro.pubsub.events import Event
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.subscriptions import Operator, Predicate, Subscription
from repro.sim.rng import SeededRNG, ZipfSampler


def _gc_setup() -> None:
    """``benchmark.pedantic(setup=...)`` treats a truthy return as fixture
    arguments, and ``gc.collect`` returns the collected-object count —
    wrap it so a busy collector cannot crash the round."""
    import gc

    gc.collect()


def _synthetic_documents(
    num_docs: int, vocab_size: int = 1200, words_per_doc: int = 100, seed: int = 17
):
    """Zipf-distributed synthetic documents (realistic term skew)."""
    rng = SeededRNG(seed)
    sampler = ZipfSampler(vocab_size, 1.05, rng.fork("zipf"))
    vocabulary = [f"term{i:04d}" for i in range(vocab_size)]
    documents = []
    for index in range(num_docs):
        words = [vocabulary[sampler.sample()] for _ in range(words_per_doc)]
        documents.append(Document(doc_id=f"doc{index:05d}", text=" ".join(words)))
    return documents


def _build_index(num_docs: int) -> InvertedIndex:
    index = InvertedIndex()
    for document in _synthetic_documents(num_docs):
        index.add(document)
    return index


def test_hp_index_add_remove_churn(benchmark):
    """Remove + re-add a batch of documents against a 1.5k-doc index.

    The seed ``remove()`` scanned the whole vocabulary per call; the
    optimized index walks only the document's own terms.
    """
    index = _build_index(1500)
    churn = [index.document(f"doc{i:05d}") for i in range(0, 1500, 15)]

    def run():
        for document in churn:
            index.remove(document.doc_id)
        for document in churn:
            index.add(document)
        return index.num_documents

    result = benchmark(run)
    assert result == 1500


def test_hp_bm25_topk_rank(benchmark):
    """BM25 top-10 over a 2k-document archive with an 8-term query."""
    index = _build_index(2000)
    ranker = BM25Ranker(index)
    # Mid-frequency terms: selective enough to score, common enough to
    # produce large candidate sets (the expensive case for full sorting).
    query = [f"term{i:04d}" for i in (3, 7, 12, 20, 33, 50, 80, 130)]

    results = benchmark(lambda: ranker.rank(query, limit=10))
    assert len(results) == 10
    assert results[0].rank == 1


def test_hp_single_event_match(benchmark):
    """One event against 10k mixed equality/range subscriptions (§5.3)."""
    rng = SeededRNG(23)
    topics = [f"topic{i:03d}" for i in range(50)]
    engine = MatchingEngine()
    for index in range(10_000):
        engine.add(make_subscription(rng, topics, subscriber=f"user{index % 200}"))
    event = make_event(rng, topics, timestamp=0.0)

    matched = benchmark(lambda: engine.match(event))
    assert isinstance(matched, list)


def test_hp_range_heavy_match(benchmark):
    """One event against 5k subscriptions that are *all* range predicates.

    No equality predicates at all, so the seed engine degenerated to a
    linear scan with two ``Predicate.matches`` calls per subscription; the
    optimized engine answers each bound with a bisect over a sorted index.
    """
    rng = SeededRNG(31)
    engine = MatchingEngine()
    for index in range(5_000):
        low = rng.randint(0, 500)
        high = low + rng.randint(10, 200)
        engine.add(
            Subscription(
                event_type="ticker.quote",
                predicates=(
                    Predicate("price", Operator.GE, low),
                    Predicate("price", Operator.LT, high),
                ),
                subscriber=f"trader{index % 100}",
            )
        )
    event = Event(event_type="ticker.quote", attributes={"price": 250, "venue": "X"})

    matched = benchmark(lambda: engine.match(event))
    assert len(matched) > 0
    assert all(sub.matches(event) for sub in matched)


def test_hp_analyzer_cached_reanalysis(benchmark):
    """Re-analyzing a working set of already-seen texts (crawler re-visits).

    The memoized analyzer answers repeats from its LRU cache instead of
    re-running tokenize + stopword filtering + stemming.
    """
    analyzer = TextAnalyzer()
    texts = [doc.text for doc in _synthetic_documents(300, seed=29)]
    for text in texts:  # warm the cache (first visit pays full analysis)
        analyzer.analyze(text)

    def run():
        total = 0
        for text in texts:
            total += analyzer.analyze(text).length
        return total

    total = benchmark(run)
    assert total > 0


def _cluster_publish_workload(
    num_subscriptions=10_000, num_events=2_000, seed=23, num_topics=50
):
    """The §5.3 mixed equality/range workload at 10k subscriptions."""
    rng = SeededRNG(seed)
    topics = [f"topic{i:03d}" for i in range(num_topics)]
    subscriptions = [
        make_subscription(rng, topics, subscriber=f"user{index % 200}")
        for index in range(num_subscriptions)
    ]
    events = [make_event(rng, topics, timestamp=float(i)) for i in range(num_events)]
    return subscriptions, events


def test_hp_sequential_publish_single(benchmark):
    """Baseline: 2k events published one by one through a single engine."""
    subscriptions, events = _cluster_publish_workload()
    engine = MatchingEngine()
    for subscription in subscriptions:
        engine.add(subscription)

    def run():
        return sum(len(engine.match(event)) for event in events)

    deliveries = benchmark(run)
    assert deliveries > 0


def test_hp_batch_publish_sharded(benchmark):
    """The same 2k events as one batch through 4 shards (must be >= 2x)."""
    subscriptions, events = _cluster_publish_workload()
    single = MatchingEngine()
    sharded = ShardedMatchingEngine(num_shards=4)
    for subscription in subscriptions:
        single.add(subscription)
        sharded.add(subscription)
    expected = sum(len(single.match(event)) for event in events)

    def run():
        return sum(len(row) for row in sharded.match_batch(events))

    deliveries = benchmark(run)
    assert deliveries == expected


def test_hp_routed_cluster_publish(benchmark):
    """2k events through a routed 3-broker line cluster (sim-driven).

    Pins the per-event cost of the full message plane: mailbox queueing,
    batched service, content-routed forwarding decisions, and simulated
    link delivery — everything a routed publish adds over bare matching.
    Subscriptions are spread across all three brokers, so a large share of
    deliveries crosses overlay links.
    """
    from repro.cluster.broker_cluster import BrokerCluster, build_cluster_topology

    subscriptions, events = _cluster_publish_workload(num_subscriptions=6_000)
    rng = SeededRNG(41)
    cluster = BrokerCluster(
        service_rate=1e9, batch_size=64, link_latency=0.001
    )
    names = build_cluster_topology("line", 3, cluster)
    for subscription in subscriptions:
        cluster.subscribe(names[rng.randint(0, 2)], subscription)
    expected = cluster.metrics.counter("cluster.deliveries")

    def run():
        # The sim clock keeps advancing run over run; each round publishes
        # the same 2k events at the current sim time and drains them.
        start = expected.value
        for index, event in enumerate(events):
            cluster.publish(names[index % 3], event)
        cluster.run()
        return expected.value - start

    deliveries = benchmark(run)
    assert deliveries > 0
    assert cluster.metrics.counter("cluster.events_forwarded").value > 0


def test_hp_mesh_publish_dedup(benchmark):
    """2k events through a 5-broker *mesh* (ring + chords, sim-driven).

    Pins the redundant-routing overhead: on a cyclic overlay every event
    fans out over multiple paths and each broker's TTL-bounded
    ``DedupIndex`` suppresses the re-arrivals.  The delta against
    ``test_hp_routed_cluster_publish`` (acyclic line) is the price of
    redundancy — extra forwards plus per-ingress dedup probes.
    """
    from repro.cluster.broker_cluster import BrokerCluster, build_cluster_topology

    subscriptions, events = _cluster_publish_workload(num_subscriptions=6_000)
    rng = SeededRNG(41)
    cluster = BrokerCluster(
        service_rate=1e9, batch_size=64, link_latency=0.001, allow_cycles=True
    )
    names = build_cluster_topology("mesh", 5, cluster)
    for subscription in subscriptions:
        cluster.subscribe(names[rng.randint(0, len(names) - 1)], subscription)
    expected = cluster.metrics.counter("cluster.deliveries")

    def run():
        start = expected.value
        for index, event in enumerate(events):
            cluster.publish(names[index % len(names)], event)
        cluster.run()
        return expected.value - start

    deliveries = benchmark(run)
    assert deliveries > 0
    assert cluster.network.duplicates_suppressed > 0, (
        "a mesh publish run must exercise duplicate suppression"
    )


def test_hp_routed_publish_many(benchmark):
    """10k events through the routed line cluster, batched vs sequential.

    Same cluster shape as ``test_hp_routed_cluster_publish`` (the C1b
    bench line: 3 brokers, 6k spread subscriptions) but over 1000 topics,
    so per-event *routing* cost — mailbox entries, service cycles,
    next-hop decisions, per-link forward messages — dominates delivery
    fan-out, which batching deliberately leaves untouched.  Events enter
    via ``publish_many`` in 512-event batches: one mailbox entry and one
    service cycle per batch, cross-cycle probe/result caching in the
    matching engine, route sets amortized per (node, signature) through
    the versioned route cache, and forwards coalesced into one
    ``event.forward_batch`` message per link per cycle.  The sequential
    baseline publishes the same events at distinct sim times (one service
    cycle and one forward message per event — the real per-event data
    plane, not a same-instant burst the mailbox would already coalesce),
    timed once before the batched rounds.  The PR 8 acceptance bar is a
    >= 3x per-event speedup, enforced here and by
    ``check_scale_budget.py --min-publish-speedup`` in CI.
    """
    import time

    from repro.cluster.broker_cluster import BrokerCluster, build_cluster_topology

    subscriptions, events = _cluster_publish_workload(
        num_subscriptions=6_000, num_events=10_000, num_topics=1_000
    )
    rng = SeededRNG(41)
    cluster = BrokerCluster(service_rate=1e9, batch_size=64, link_latency=0.001)
    names = build_cluster_topology("line", 3, cluster)
    for subscription in subscriptions:
        cluster.subscribe(names[rng.randint(0, 2)], subscription)
    delivered = cluster.metrics.counter("cluster.deliveries")

    # Sequential baseline: timed per-event passes (same events, same
    # ingress rotation), drained before the batched rounds start.  Two
    # passes, best-of: a single pass is exposed to cyclic-GC debt left
    # by earlier benchmarks (the 1M-subscription build) landing in the
    # middle of the measurement.
    import gc

    seq_s = float("inf")
    for _ in range(2):
        base = cluster.sim.now
        gc.collect()
        seq_start = time.perf_counter()
        for index, event in enumerate(events):
            cluster.publish_at(base + index * 1e-5, names[index % 3], event)
        cluster.run()
        seq_s = min(seq_s, time.perf_counter() - seq_start)
    seq_deliveries = delivered.value // 2

    def run():
        start = delivered.value
        base = cluster.sim.now
        # Batches streamed at distinct sim times (the steady-state shape
        # documented in PERFORMANCE.md): one mailbox entry, one service
        # cycle and one coalesced forward per link per batch — not one
        # same-instant mega-cycle.
        for index, chunk_start in enumerate(range(0, len(events), 512)):
            cluster.publish_many_at(
                base + index * 1e-3,
                names[index % 3],
                events[chunk_start : chunk_start + 512],
            )
        cluster.run()
        return delivered.value - start

    # The same GC discipline as the sequential passes: collect before
    # each round so cyclic-GC debt from earlier benchmarks is not billed
    # to whichever path happens to trip the threshold.
    deliveries = benchmark.pedantic(
        run, setup=_gc_setup, rounds=5, iterations=1, warmup_rounds=1
    )
    # What is delivered must not depend on how events were enqueued.
    assert deliveries == seq_deliveries
    assert cluster.network.kind_message_count("event.forward_batch") > 0
    # Best round vs best sequential pass: the ratio of means is noisier
    # than either path (GC debt from earlier benchmarks lands in some
    # rounds), min-vs-min is what the hardware actually does.
    batch_s = benchmark.stats.stats.min if benchmark.stats else None
    speedup = round(seq_s / batch_s, 2) if batch_s else None
    benchmark.extra_info.update(
        {
            "events": len(events),
            "sequential_s": round(seq_s, 4),
            "batched_s": round(batch_s, 4) if batch_s else None,
            "sequential_us_per_event": round(seq_s / len(events) * 1e6, 2),
            "batched_us_per_event": (
                round(batch_s / len(events) * 1e6, 2) if batch_s else None
            ),
            "speedup": speedup,
        }
    )
    if speedup is not None:
        assert speedup >= 3.0, f"batched publish speedup {speedup} < 3x"


def test_hp_delivery_fanout(benchmark):
    """High fan-out delivery through the routed serve loop, vectorized.

    The inverse workload of ``test_hp_routed_publish_many``: 5 topics
    instead of 1000, so every event matches ~1/5 of 6k subscriptions and
    per-*delivery* work (hop/e2e histogram observations, subscriber
    callbacks) dwarfs per-event routing.  PR 9 vectorizes that loop:
    metric handles are hoisted, each event's fan-out lands as one
    ``Histogram.observe_many`` instead of per-subscriber ``observe``
    pairs, and consumers register ``on_delivery_batch`` (one call per
    event with the full match row) rather than a per-(event, subscription)
    callback.  Reported as µs per delivery; the batch-callback totals are
    asserted identical to the per-delivery counter, so vectorization
    cannot change what is delivered.
    """
    import gc

    from repro.cluster.broker_cluster import BrokerCluster, build_cluster_topology

    subscriptions, events = _cluster_publish_workload(
        num_subscriptions=6_000, num_events=1_000, num_topics=5
    )
    rng = SeededRNG(43)
    cluster = BrokerCluster(service_rate=1e9, batch_size=64, link_latency=0.001)
    names = build_cluster_topology("line", 3, cluster)
    for subscription in subscriptions:
        cluster.subscribe(names[rng.randint(0, 2)], subscription)
    delivered = cluster.metrics.counter("cluster.deliveries")
    seen_by_batch_callback = [0]
    cluster.on_delivery_batch(
        lambda _broker, _event, row: seen_by_batch_callback.__setitem__(
            0, seen_by_batch_callback[0] + len(row)
        )
    )

    def run():
        start = delivered.value
        base = cluster.sim.now
        for index, chunk_start in enumerate(range(0, len(events), 256)):
            cluster.publish_many_at(
                base + index * 1e-3,
                names[index % 3],
                events[chunk_start : chunk_start + 256],
            )
        cluster.run()
        return delivered.value - start

    deliveries = benchmark.pedantic(
        run, setup=_gc_setup, rounds=5, iterations=1, warmup_rounds=1
    )
    assert deliveries > 100_000  # genuinely fan-out heavy
    # The vectorized batch callback saw exactly what the counter counted.
    assert seen_by_batch_callback[0] == delivered.value
    per_delivery_us = (
        benchmark.stats.stats.min / deliveries * 1e6 if benchmark.stats else None
    )
    benchmark.extra_info.update(
        {
            "events": len(events),
            "deliveries_per_round": int(deliveries),
            "fanout_per_event": round(deliveries / len(events), 1),
            "us_per_delivery": (
                round(per_delivery_us, 3) if per_delivery_us is not None else None
            ),
        }
    )


def test_hp_multiprocess_shard_match_batch(benchmark):
    """The sharded 2k-event batch dispatched to worker processes.

    Directly comparable to ``test_hp_batch_publish_sharded`` (same
    workload, same shard count): the gap between the two is the
    serialization + IPC toll of process isolation, and the crossover
    point depends on core count (see PERFORMANCE.md "Message plane").
    """
    from repro.cluster.workers import MultiprocessExecutor

    subscriptions, events = _cluster_publish_workload()
    single = MatchingEngine()
    for subscription in subscriptions:
        single.add(subscription)
    expected = sum(len(single.match(event)) for event in events)

    with MultiprocessExecutor(chunk_size=500) as executor:
        sharded = ShardedMatchingEngine(num_shards=4, executor=executor)
        for subscription in subscriptions:
            sharded.add(subscription)
        sharded.match_batch(events[:8])  # warm the pool + worker caches

        def run():
            return sum(len(row) for row in sharded.match_batch(events))

        deliveries = benchmark(run)
    assert deliveries == expected


def test_hp_thread_shard_match_batch(benchmark):
    """The sharded 2k-event batch dispatched to a thread pool.

    Comparable to ``test_hp_batch_publish_sharded`` (same workload, same
    shard count): the gap is the pool-dispatch overhead, and — matching
    being GIL-bound — the number should sit near the serial executor's.
    The executor's win is reserved for IO-bound delivery fan-out, which a
    micro-benchmark of pure matching deliberately does not show.
    """
    from repro.cluster.workers import ThreadExecutor

    subscriptions, events = _cluster_publish_workload()
    single = MatchingEngine()
    for subscription in subscriptions:
        single.add(subscription)
    expected = sum(len(single.match(event)) for event in events)

    with ThreadExecutor(workers=4) as executor:
        sharded = ShardedMatchingEngine(num_shards=4, executor=executor)
        for subscription in subscriptions:
            sharded.add(subscription)
        sharded.match_batch(events[:8])  # warm the pool

        def run():
            return sum(len(row) for row in sharded.match_batch(events))

        deliveries = benchmark(run)
    assert deliveries == expected


def test_hp_cluster_churn_recovery(benchmark):
    """One link failover + failback cycle on a loaded 4-broker line.

    Pins the wall-clock cost of the route-repair machinery itself (what
    a failure detector triggers once suspicion fires): covering-aware
    re-routing of both split components on teardown, then the
    canonicalizing re-advertisement on failback — with 4k subscriptions
    of routing state to rebuild.  The cluster is built once; each round
    tears the middle link down and restores it, returning to the
    identical converged state.
    """
    from repro.cluster.broker_cluster import BrokerCluster, build_cluster_topology
    from repro.cluster.recovery import routing_converged

    subscriptions, _events = _cluster_publish_workload(
        num_subscriptions=4_000, num_events=1
    )
    rng = SeededRNG(47)
    cluster = BrokerCluster(service_rate=1e9, link_latency=0.001)
    names = build_cluster_topology("line", 4, cluster)
    for subscription in subscriptions:
        cluster.subscribe(names[rng.randint(0, 3)], subscription)

    def run():
        cluster.fail_link("b1", "b2")
        cluster.restore_link("b1", "b2")
        return cluster.total_routing_state()

    state = benchmark(run)
    assert state > 0
    assert routing_converged(cluster.fabric)


def test_hp_unsubscribe_churn(benchmark):
    """Unsubscribe/resubscribe churn against 50k routed subscriptions.

    Pins the control-plane retraction hot path: each round retracts 500
    subscriptions spread across a 4-broker line (with covering repair for
    the routes they pruned) and re-issues them.  The reverse route index
    and the pruned-by graph bound every retraction to the routes the
    subscription actually holds — the pre-PR 5 path swept every node ×
    neighbour table and ran a ``covers()`` scan over *all* live
    subscriptions per unsubscribe, which at this scale is seconds per
    round.  ``REPRO_BENCH_SCALE`` shrinks the population for CI smoke.
    """
    from conftest import bench_scale
    from repro.cluster.broker_cluster import BrokerCluster, build_cluster_topology
    from repro.cluster.recovery import routing_converged

    num_subscriptions = max(2_000, int(50_000 * bench_scale(default=1.0)))
    subscriptions, _events = _cluster_publish_workload(
        num_subscriptions=num_subscriptions, num_events=1
    )
    rng = SeededRNG(53)
    cluster = BrokerCluster(service_rate=1e9, link_latency=0.001)
    names = build_cluster_topology("line", 4, cluster)
    home_of = {}
    for subscription in subscriptions:
        home = names[rng.randint(0, 3)]
        home_of[subscription.subscription_id] = home
        cluster.subscribe(home, subscription)
    churn = subscriptions[:: max(1, num_subscriptions // 500)]

    def run():
        for subscription in churn:
            assert cluster.unsubscribe(
                home_of[subscription.subscription_id], subscription.subscription_id
            )
        for subscription in churn:
            cluster.subscribe(home_of[subscription.subscription_id], subscription)
        return cluster.total_routing_state()

    state = benchmark(run)
    assert state > 0
    assert routing_converged(cluster.fabric)


def test_hp_sharded_single_event_match(benchmark):
    """One event against 10k subscriptions split across 4 shards.

    Pins the per-event overhead sharding adds on the unbatched path (each
    shard probes the event independently).
    """
    subscriptions, events = _cluster_publish_workload(num_events=1)
    engine = ShardedMatchingEngine(num_shards=4)
    for subscription in subscriptions:
        engine.add(subscription)
    event = events[0]

    matched = benchmark(lambda: engine.match(event))
    assert isinstance(matched, list)


def test_hp_scale_million_subscriptions(benchmark):
    """A million §5.3-shaped subscriptions resident in one engine (PR 6).

    Pins the interned-pool + columnar-storage scale target: the full
    population is built through ``add_many``, the resident set's RSS and
    the engine's columnar/pool footprint are recorded in ``extra_info``
    alongside subscribe/unsubscribe latency at full population, and the
    benchmark clock times single-event matching against the million
    resident subscriptions.  ``REPRO_BENCH_SCALE`` shrinks the population
    for CI smoke (the 100k budget job).
    """
    import resource
    import time

    from conftest import bench_scale
    from repro.pubsub.subscriptions import predicate_pool

    target = max(20_000, int(1_000_000 * bench_scale(default=1.0)))
    topics = [f"topic{i:02d}" for i in range(50)]
    rng = SeededRNG(71)
    subscriptions = [
        make_subscription(rng, topics, f"user{i % 200:03d}") for i in range(target)
    ]
    engine = MatchingEngine()
    build_start = time.perf_counter()
    engine.add_many(subscriptions)
    build_s = time.perf_counter() - build_start
    assert len(engine) == target
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    # Subscribe/unsubscribe latency at full population: churn a fresh
    # slice in and out while the million stay resident.
    churn = [
        make_subscription(rng, topics, f"churn{i % 50:02d}") for i in range(2_000)
    ]
    churn_start = time.perf_counter()
    for subscription in churn:
        engine.add(subscription)
    subscribe_us = (time.perf_counter() - churn_start) / len(churn) * 1e6
    churn_start = time.perf_counter()
    for subscription in churn:
        assert engine.remove(subscription.subscription_id)
    unsubscribe_us = (time.perf_counter() - churn_start) / len(churn) * 1e6

    stats = engine.column_stats()
    pool = predicate_pool().stats()
    benchmark.extra_info.update(
        {
            "subscriptions": target,
            "build_s": round(build_s, 3),
            "rss_mb": round(rss_mb, 1),
            "subscribe_us": round(subscribe_us, 3),
            "unsubscribe_us": round(unsubscribe_us, 3),
            "column_bytes": stats["needs_bytes"]
            + stats["counts_bytes"]
            + stats["subscriber_id_bytes"],
            "distinct_shapes": stats["distinct_shapes"],
            "pool_predicates": pool["predicates"],
            "pool_signatures": pool["signatures"],
        }
    )

    event = Event(
        event_type="news.story", attributes={"topic": topics[7], "priority": 3}
    )
    matched = benchmark(lambda: engine.match(event))
    assert len(matched) > 0


def test_hp_batch_subscribe_vs_loop(benchmark):
    """100k-subscription batch placement versus a subscribe loop (PR 6).

    Pins the advertisement-batching win: ``subscribe_many_at`` runs one
    BFS over a 48-broker line for the whole batch and lets batch members
    covered by an earlier member copy that member's per-edge fate (with
    the per-edge prune records flushed in bulk), where the loop re-walks
    the overlay and probes every edge table per subscription.  The line
    topology makes the per-edge control-plane cost dominate — the regime
    batching exists for; the amortization grows with path length (about
    0.4s/edge looped vs 0.05s/edge batched at 100k).  Subscribers are
    distinct (one subscription each) so ingress merging fires in neither
    path and the measured gap is the batching itself; the loop time and
    speedup ratio land in ``extra_info``.
    """
    import time

    from conftest import bench_scale
    from repro.cluster.routing import RoutingFabric
    from repro.pubsub.broker import Broker

    target = max(5_000, int(100_000 * bench_scale(default=1.0)))
    topics = [f"topic{i:02d}" for i in range(50)]
    rng = SeededRNG(37)
    subscriptions = [
        make_subscription(rng, topics, f"solo{i:06d}") for i in range(target)
    ]

    def build_fabric():
        fabric = RoutingFabric()
        for index in range(48):
            fabric.add_node(f"b{index}", Broker(f"b{index}"))
        for index in range(47):
            fabric.connect(f"b{index}", f"b{index + 1}")
        return fabric

    # The loop fabric's routing state is millions of container objects;
    # compare sizes and release it before the timed batch rounds so
    # cyclic-GC passes over it are not billed to the batch.
    import gc

    loop_fabric = build_fabric()
    loop_start = time.perf_counter()
    for subscription in subscriptions:
        loop_fabric.subscribe_at("b0", subscription)
    loop_s = time.perf_counter() - loop_start
    loop_state = loop_fabric.total_routing_state()
    del loop_fabric
    gc.collect()

    def run():
        fabric = build_fabric()
        fabric.subscribe_many_at("b0", subscriptions)
        return fabric.total_routing_state()

    state = benchmark.pedantic(run, setup=_gc_setup, rounds=3, iterations=1)
    assert state == loop_state
    # benchmark.stats is None under --benchmark-disable (CI smoke).
    batch_s = benchmark.stats.stats.mean if benchmark.stats else None
    benchmark.extra_info.update(
        {
            "subscriptions": target,
            "loop_s": round(loop_s, 4),
            "batch_s": round(batch_s, 4) if batch_s else None,
            "speedup": round(loop_s / batch_s, 2) if batch_s else None,
        }
    )
