"""Benchmark X2 — collaborative recommendations between grouped peers (§4, §5.2).

Compares the distributed deployment with and without the I-SPY-style
group-profile exchange: peers with similar interests are grouped and gossip
recommendations (never raw attention) to each other.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.collaborative import run_collaborative_experiment


def test_x2_collaborative_vs_solo_recommendations(benchmark, scale):
    result = run_once(benchmark, run_collaborative_experiment, scale=min(scale, 0.12))

    print()
    print(result.summary())

    rows = {row["metric"]: row for row in result.rows}
    # Solo mode never gossips; collaborative mode forms groups.
    assert rows["gossip_messages"]["solo"] == 0
    assert rows["groups_formed"]["collaborative"] >= 1
    # Collaborative exchange can only add subscriptions on top of what each
    # peer's own attention discovered.
    assert (
        rows["active_subscriptions_per_user"]["collaborative"]
        >= rows["active_subscriptions_per_user"]["solo"]
    )
    assert rows["events_delivered"]["collaborative"] >= rows["events_delivered"]["solo"]
    # Click-through of delivered items stays within a sane band (gossiped
    # topics are peer-endorsed, not random).
    assert rows["click_through_rate"]["collaborative"] >= 0.0
