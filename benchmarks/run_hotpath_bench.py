#!/usr/bin/env python
"""Run the hot-path micro-benchmarks and record a named snapshot.

Usage::

    python benchmarks/run_hotpath_bench.py --label pr2 [--output BENCH_PR2.json]
    python benchmarks/run_hotpath_bench.py --label before --import-raw raw.json

Each invocation merges one labeled snapshot (per-test mean/median/stddev
seconds and round counts) into the output JSON and, whenever a ``before``
snapshot exists, recomputes every other label's speedup relative to it.
A ``prN`` label defaults its output to ``BENCH_PRN.json``; when that file
does not exist yet it is seeded with the snapshots of the most recent
earlier ``BENCH_PR*.json`` so the perf trajectory stays in one document
per PR without losing history.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR1.json")
BENCH_TARGETS = [
    "benchmarks/bench_hotpaths.py",
    "benchmarks/bench_x3_substrate_scale.py::test_x3a_single_event_match_latency",
]


def output_for_label(label: str) -> str:
    """``prN``-style labels get their own ``BENCH_PRN.json`` document."""
    match = re.fullmatch(r"pr(\d+)", label)
    if match:
        return os.path.join(REPO_ROOT, f"BENCH_PR{match.group(1)}.json")
    return DEFAULT_OUTPUT


def bootstrap_snapshots(output_path: str) -> dict:
    """Seed a new BENCH_PR*.json with the latest earlier document's data."""
    candidates = []
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_PR*.json")):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", os.path.basename(path))
        if match and os.path.abspath(path) != os.path.abspath(output_path):
            candidates.append((int(match.group(1)), path))
    if not candidates:
        return {}
    _, latest = max(candidates)
    with open(latest) as handle:
        return json.load(handle).get("snapshots", {})


def run_benchmarks() -> dict:
    """Run pytest-benchmark on the hot-path suite; return the raw JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = handle.name
    try:
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                *BENCH_TARGETS,
                "-q",
                f"--benchmark-json={raw_path}",
            ],
            cwd=REPO_ROOT,
            env=env,
            check=True,
        )
        with open(raw_path) as raw:
            return json.load(raw)
    finally:
        os.unlink(raw_path)


def snapshot_from_raw(raw: dict) -> dict:
    """Reduce a pytest-benchmark JSON payload to the stats we track."""
    snapshot = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "mean_s": stats["mean"],
            "median_s": stats["median"],
            "stddev_s": stats["stddev"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
        }
        # Scale benchmarks attach side-band measurements (RSS, batch
        # speedups, pool sizes) through benchmark.extra_info.
        if bench.get("extra_info"):
            entry["extra_info"] = bench["extra_info"]
        snapshot[bench["name"]] = entry
    return snapshot


def merge(output_path: str, label: str, snapshot: dict) -> dict:
    if os.path.exists(output_path):
        with open(output_path) as existing:
            document = json.load(existing)
    else:
        document = {
            "description": "Hot-path perf trajectory (benchmarks/bench_hotpaths.py); "
            "see PERFORMANCE.md",
            "snapshots": bootstrap_snapshots(output_path),
            "speedups_vs_before": {},
        }
    document["snapshots"][label] = snapshot
    before = document["snapshots"].get("before")
    if before:
        speedups = {}
        for other_label, other in document["snapshots"].items():
            if other_label == "before":
                continue
            speedups[other_label] = {
                name: round(before[name]["mean_s"] / stats["mean_s"], 2)
                for name, stats in other.items()
                if name in before and stats["mean_s"] > 0
            }
        document["speedups_vs_before"] = speedups
    with open(output_path, "w") as out:
        json.dump(document, out, indent=2, sort_keys=True)
        out.write("\n")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="snapshot name, e.g. before/pr2")
    parser.add_argument(
        "--output",
        default=None,
        help="output JSON (default: derived from the label, e.g. pr2 -> BENCH_PR2.json)",
    )
    parser.add_argument(
        "--import-raw",
        dest="import_raw",
        help="merge an existing pytest-benchmark JSON instead of running",
    )
    args = parser.parse_args()
    output = args.output if args.output else output_for_label(args.label)
    if args.import_raw:
        with open(args.import_raw) as handle:
            raw = json.load(handle)
    else:
        raw = run_benchmarks()
    document = merge(output, args.label, snapshot_from_raw(raw))
    speedups = document.get("speedups_vs_before", {}).get(args.label)
    if speedups:
        print(f"speedups vs before ({args.label}):")
        for name, ratio in sorted(speedups.items()):
            print(f"  {name}: {ratio:.2f}x")
    print(f"wrote snapshot {args.label!r} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
