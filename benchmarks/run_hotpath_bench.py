#!/usr/bin/env python
"""Run the hot-path micro-benchmarks and record a named snapshot.

Usage::

    python benchmarks/run_hotpath_bench.py --label after [--output BENCH_PR1.json]
    python benchmarks/run_hotpath_bench.py --label before --import-raw raw.json

Each invocation merges one labeled snapshot (per-test mean/median/stddev
seconds and round counts) into the output JSON and, whenever a ``before``
snapshot exists, recomputes every other label's speedup relative to it.
Future PRs append new labels to the same file to keep a perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR1.json")
BENCH_TARGETS = [
    "benchmarks/bench_hotpaths.py",
    "benchmarks/bench_x3_substrate_scale.py::test_x3a_single_event_match_latency",
]


def run_benchmarks() -> dict:
    """Run pytest-benchmark on the hot-path suite; return the raw JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = handle.name
    try:
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                *BENCH_TARGETS,
                "-q",
                f"--benchmark-json={raw_path}",
            ],
            cwd=REPO_ROOT,
            env=env,
            check=True,
        )
        with open(raw_path) as raw:
            return json.load(raw)
    finally:
        os.unlink(raw_path)


def snapshot_from_raw(raw: dict) -> dict:
    """Reduce a pytest-benchmark JSON payload to the stats we track."""
    snapshot = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        snapshot[bench["name"]] = {
            "mean_s": stats["mean"],
            "median_s": stats["median"],
            "stddev_s": stats["stddev"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
        }
    return snapshot


def merge(output_path: str, label: str, snapshot: dict) -> dict:
    if os.path.exists(output_path):
        with open(output_path) as existing:
            document = json.load(existing)
    else:
        document = {
            "description": "Hot-path perf trajectory (benchmarks/bench_hotpaths.py); "
            "see PERFORMANCE.md",
            "snapshots": {},
            "speedups_vs_before": {},
        }
    document["snapshots"][label] = snapshot
    before = document["snapshots"].get("before")
    if before:
        speedups = {}
        for other_label, other in document["snapshots"].items():
            if other_label == "before":
                continue
            speedups[other_label] = {
                name: round(before[name]["mean_s"] / stats["mean_s"], 2)
                for name, stats in other.items()
                if name in before and stats["mean_s"] > 0
            }
        document["speedups_vs_before"] = speedups
    with open(output_path, "w") as out:
        json.dump(document, out, indent=2, sort_keys=True)
        out.write("\n")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="snapshot name, e.g. before/after")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--import-raw",
        dest="import_raw",
        help="merge an existing pytest-benchmark JSON instead of running",
    )
    args = parser.parse_args()
    if args.import_raw:
        with open(args.import_raw) as handle:
            raw = json.load(handle)
    else:
        raw = run_benchmarks()
    document = merge(args.output, args.label, snapshot_from_raw(raw))
    speedups = document.get("speedups_vs_before", {}).get(args.label)
    if speedups:
        print(f"speedups vs before ({args.label}):")
        for name, ratio in sorted(speedups.items()):
            print(f"  {name}: {ratio:.2f}x")
    print(f"wrote snapshot {args.label!r} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
