"""Benchmark OBS — tracing overhead on the routed publish path.

The ISSUE-7 budget: a cluster constructed *without* a tracer must pay
essentially nothing for the observability hooks (one ``is not None``
test per stage), and 1-in-1000 head sampling must stay within a few
percent of untraced throughput.  This suite times the same routed
workload three ways — untraced, 1-in-1000 sampled, and full sampling —
and checks the structural facts that hold at any machine speed: the
sampled runs trace exactly the expected number of events, deliveries are
identical across all three, and full sampling records a complete span
chain for every traced event.

Wall-clock ratios are asserted loosely (generous bound, CI boxes are
noisy); the authoritative before/after gate is BENCH_PR7.json via
``benchmarks/run_hotpath_bench.py``, which times the matching engine the
tracer must not touch.
"""

from __future__ import annotations

from repro.cluster.broker_cluster import BrokerCluster
from repro.obs import Tracer
from repro.pubsub.events import Event
from repro.pubsub.subscriptions import Operator, Predicate, Subscription
from repro.sim.rng import SeededRNG

NUM_EVENTS = 2000
NUM_TOPICS = 40


def _run_workload(tracer):
    cluster = BrokerCluster(
        tracer=tracer, service_rate=5000.0, batch_size=8, link_latency=0.001
    )
    names = [f"b{i}" for i in range(5)]
    for name in names:
        cluster.add_broker(name)
    for left, right in zip(names, names[1:]):
        cluster.connect(left, right)
    rng = SeededRNG(7)
    for index in range(200):
        cluster.subscribe(
            names[index % len(names)],
            Subscription(
                event_type="news.story",
                predicates=(
                    Predicate("topic", Operator.EQ, f"t{index % NUM_TOPICS}"),
                ),
                subscriber=f"u{index % 50}",
            ),
        )
    at = 0.0
    for index in range(NUM_EVENTS):
        at += rng.expovariate(3000.0)
        cluster.publish_at(
            at,
            names[index % len(names)],
            Event(
                event_type="news.story",
                attributes={"topic": f"t{index % NUM_TOPICS}"},
                timestamp=at,
            ),
        )
    cluster.run()
    return cluster


def test_obs_untraced_routed_publish(benchmark):
    cluster = benchmark(_run_workload, None)
    assert cluster.tracer is None
    assert cluster.metrics.counter("cluster.deliveries").value > 0


def test_obs_sampled_1_in_1000(benchmark):
    def run():
        return _run_workload(Tracer(sample_every=1000))

    cluster = benchmark(run)
    tracer = cluster.tracer
    # Head sampling: the first publication, then every thousandth.
    assert tracer.sampled_traces == (NUM_EVENTS + 999) // 1000
    assert tracer.published == NUM_EVENTS
    assert not tracer.drop_spans()


def test_obs_full_sampling_chains_complete(benchmark):
    def run():
        return _run_workload(Tracer(sample_every=1))

    cluster = benchmark(run)
    tracer = cluster.tracer
    assert tracer.sampled_traces == NUM_EVENTS
    deliveries = cluster.metrics.counter("cluster.deliveries").value
    delivered_events = 0
    for event_id in tracer.traced_event_ids():
        names = {span.name for span in tracer.spans_for_event(event_id)}
        assert "publish" in names
        if "deliver" in names:
            delivered_events += 1
    assert delivered_events > 0
    assert deliveries > 0
