"""Benchmark OBS — tracing overhead on the routed publish path.

The ISSUE-7 budget: a cluster constructed *without* a tracer must pay
essentially nothing for the observability hooks (one ``is not None``
test per stage), and 1-in-1000 head sampling must stay within a few
percent of untraced throughput.  This suite times the same routed
workload three ways — untraced, 1-in-1000 sampled, and full sampling —
and checks the structural facts that hold at any machine speed: the
sampled runs trace exactly the expected number of events, deliveries are
identical across all three, and full sampling records a complete span
chain for every traced event.

Wall-clock ratios are asserted loosely (generous bound, CI boxes are
noisy); the authoritative before/after gate is BENCH_PR7.json via
``benchmarks/run_hotpath_bench.py``, which times the matching engine the
tracer must not touch.

PR 8 extends the same three-way comparison to the batched data plane
(``publish_many`` + coalesced ``event.forward_batch`` forwards): the
per-event fork/span work batching adds must keep 1-in-1000 sampling
within noise of untraced batched publishing, and full sampling must
still produce one complete chain per member event.
"""

from __future__ import annotations

from repro.cluster.broker_cluster import BrokerCluster
from repro.obs import Tracer
from repro.pubsub.events import Event
from repro.pubsub.subscriptions import Operator, Predicate, Subscription
from repro.sim.rng import SeededRNG

NUM_EVENTS = 2000
NUM_TOPICS = 40


def _run_workload(tracer):
    cluster = BrokerCluster(
        tracer=tracer, service_rate=5000.0, batch_size=8, link_latency=0.001
    )
    names = [f"b{i}" for i in range(5)]
    for name in names:
        cluster.add_broker(name)
    for left, right in zip(names, names[1:]):
        cluster.connect(left, right)
    rng = SeededRNG(7)
    for index in range(200):
        cluster.subscribe(
            names[index % len(names)],
            Subscription(
                event_type="news.story",
                predicates=(
                    Predicate("topic", Operator.EQ, f"t{index % NUM_TOPICS}"),
                ),
                subscriber=f"u{index % 50}",
            ),
        )
    at = 0.0
    for index in range(NUM_EVENTS):
        at += rng.expovariate(3000.0)
        cluster.publish_at(
            at,
            names[index % len(names)],
            Event(
                event_type="news.story",
                attributes={"topic": f"t{index % NUM_TOPICS}"},
                timestamp=at,
            ),
        )
    cluster.run()
    return cluster


def test_obs_untraced_routed_publish(benchmark):
    cluster = benchmark(_run_workload, None)
    assert cluster.tracer is None
    assert cluster.metrics.counter("cluster.deliveries").value > 0


def test_obs_sampled_1_in_1000(benchmark):
    def run():
        return _run_workload(Tracer(sample_every=1000))

    cluster = benchmark(run)
    tracer = cluster.tracer
    # Head sampling: the first publication, then every thousandth.
    assert tracer.sampled_traces == (NUM_EVENTS + 999) // 1000
    assert tracer.published == NUM_EVENTS
    assert not tracer.drop_spans()


def test_obs_full_sampling_chains_complete(benchmark):
    def run():
        return _run_workload(Tracer(sample_every=1))

    cluster = benchmark(run)
    tracer = cluster.tracer
    assert tracer.sampled_traces == NUM_EVENTS
    deliveries = cluster.metrics.counter("cluster.deliveries").value
    delivered_events = 0
    for event_id in tracer.traced_event_ids():
        names = {span.name for span in tracer.spans_for_event(event_id)}
        assert "publish" in names
        if "deliver" in names:
            delivered_events += 1
    assert delivered_events > 0
    assert deliveries > 0


BATCH = 50


def _run_batched_workload(tracer):
    """The same workload through ``publish_many`` in 50-event batches."""
    cluster = BrokerCluster(
        tracer=tracer, service_rate=5000.0, batch_size=8, link_latency=0.001
    )
    names = [f"b{i}" for i in range(5)]
    for name in names:
        cluster.add_broker(name)
    for left, right in zip(names, names[1:]):
        cluster.connect(left, right)
    rng = SeededRNG(7)
    for index in range(200):
        cluster.subscribe(
            names[index % len(names)],
            Subscription(
                event_type="news.story",
                predicates=(
                    Predicate("topic", Operator.EQ, f"t{index % NUM_TOPICS}"),
                ),
                subscriber=f"u{index % 50}",
            ),
        )
    at = 0.0
    chunk = []
    for index in range(NUM_EVENTS):
        at += rng.expovariate(3000.0)
        chunk.append(
            Event(
                event_type="news.story",
                attributes={"topic": f"t{index % NUM_TOPICS}"},
                timestamp=at,
            )
        )
        if len(chunk) == BATCH:
            cluster.publish_many_at(at, names[(index // BATCH) % len(names)], chunk)
            chunk = []
    if chunk:
        cluster.publish_many_at(at, names[0], chunk)
    cluster.run()
    return cluster


def test_obs_untraced_batched_publish(benchmark):
    cluster = benchmark(_run_batched_workload, None)
    assert cluster.tracer is None
    assert cluster.metrics.counter("cluster.deliveries").value > 0
    # The batched plane actually coalesced forwards on the wire.
    assert cluster.network.kind_message_count("event.forward_batch") > 0


def test_obs_batched_sampled_1_in_1000(benchmark):
    """1-in-1000 sampling on the batched path: same structural facts as
    the per-event path (exact sample count, no drops), and deliveries
    identical to the untraced batched run — the within-noise wall-clock
    comparison is read off this bench line next to
    ``test_obs_untraced_batched_publish``."""

    def run():
        return _run_batched_workload(Tracer(sample_every=1000))

    cluster = benchmark(run)
    tracer = cluster.tracer
    # Head sampling is per member event, not per batch: the first
    # publication, then every thousandth.
    assert tracer.sampled_traces == (NUM_EVENTS + 999) // 1000
    assert tracer.published == NUM_EVENTS
    assert not tracer.drop_spans()
    untraced = _run_batched_workload(None)
    assert (
        cluster.metrics.counter("cluster.deliveries").value
        == untraced.metrics.counter("cluster.deliveries").value
    )


def test_obs_batched_full_sampling_chains_complete(benchmark):
    def run():
        return _run_batched_workload(Tracer(sample_every=1))

    cluster = benchmark(run)
    tracer = cluster.tracer
    assert tracer.sampled_traces == NUM_EVENTS
    delivered_events = 0
    forwarded_events = 0
    for event_id in tracer.traced_event_ids():
        spans = tracer.spans_for_event(event_id)
        names = {span.name for span in spans}
        assert "publish" in names
        if "deliver" in names:
            delivered_events += 1
        for span in spans:
            if span.name == "forward":
                forwarded_events += 1
                # Coalesced forwards still carry per-event spans.
                assert span.attrs.get("coalesced", 1) >= 1
    assert delivered_events > 0
    assert forwarded_events > 0
