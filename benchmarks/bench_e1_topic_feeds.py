"""Benchmark E1 — topic-based subscriptions from browsing history (paper §3.2).

Regenerates the funnel the paper reports for ten weeks of browsing by five
users: request volume, distinct servers, the 70% advertisement share,
one-visit servers, RSS feeds discovered and the rate of roughly one new
feed recommendation per user per day.

Run at the paper's full size with ``REPRO_BENCH_SCALE=1.0``.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.topic_feeds import PAPER_E1, run_topic_feed_experiment


def test_e1_topic_feed_funnel(benchmark, scale):
    result = run_once(benchmark, run_topic_feed_experiment, scale=scale)

    print()
    print(result.summary())

    measured = {row["metric"]: row["measured"] for row in result.rows}
    # Shape assertions mirroring the paper's observations:
    # the ad-server share of requests is dominant (70% in the paper) ...
    assert 0.5 <= measured["ad_request_fraction"] <= 0.85
    # ... feeds are plentiful enough to overwhelm users ...
    assert measured["distinct_feeds_discovered"] >= 10
    # ... a long tail of servers is visited exactly once ...
    assert measured["servers_visited_once"] > 0
    # ... and recommendations arrive at a rate of the order of one per user
    # per day (the paper reports ~1/day at full scale).
    assert 0.1 <= measured["recommendations_per_user_per_day"] <= 20.0
    assert result.paper == PAPER_E1
