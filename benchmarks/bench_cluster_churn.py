"""Benchmark C2 — churn sweep (crash rate × recovery delay × topology).

Runs the ``repro.experiments.cluster_churn`` driver once with the verify
oracle armed and checks the structural facts that must hold at any
machine speed: the fault plan actually crashed brokers, routing state
converged back to the fresh-build snapshot on every point, post-recovery
delivery matched the oracle exactly (the driver raises otherwise), no
duplicates ever appeared, and harsher churn loses at least as much as
gentler churn in simulated time.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, run_once
from repro.experiments.cluster_churn import run_cluster_churn


def test_c2_cluster_churn_sweep(benchmark):
    result = run_once(
        benchmark,
        run_cluster_churn,
        scale=max(0.08, bench_scale()),
        crash_rates=(0.25, 0.75),
        recovery_delays=(0.3,),
        churn_duration=5.0,
        verify=True,
    )
    print()
    print(result.summary())

    assert result.parameters["verified"] is True
    by_topology = {}
    for row in result.rows:
        assert row["converged"] == 1.0
        assert row["duplicated"] == 0
        assert row["delivered"] + row["lost"] == row["expected"]
        by_topology.setdefault(row["topology"], []).append(row)
    assert set(by_topology) == {"line", "star", "tree"}
    for rows in by_topology.values():
        gentle = next(row for row in rows if row["crash_rate"] == 0.25)
        harsh = next(row for row in rows if row["crash_rate"] == 0.75)
        # Simulated-time facts, hardware independent: more crashes mean
        # more downtime, and the detector restored every torn-down link.
        assert harsh["crashes"] >= gentle["crashes"]
        assert harsh["unavailability_s"] >= gentle["unavailability_s"]
        for row in rows:
            if row["crashes"]:
                assert row["link_restores"] >= 1
