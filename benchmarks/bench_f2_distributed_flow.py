"""Benchmark F2 — message flows of the distributed architecture (Figure 2).

Runs both deployments over identically generated workloads and regenerates
the comparison that Section 4 argues qualitatively: in the peer-to-peer
design no attention data leaves the user's host, no crawling is needed
(page text comes from the browser cache) and only sub/unsub operations and
events cross the network.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.flows import run_flow_comparison


def test_f2_distributed_vs_centralized_flows(benchmark, scale):
    result = run_once(benchmark, run_flow_comparison, scale=min(scale, 0.12), collaborative=True)

    print()
    print(result.summary())

    rows = {row["flow"]: row for row in result.rows}
    # Privacy: zero attention leaves the host in the distributed design.
    assert rows["1. attention uploads (msgs)"]["distributed"] == 0
    assert rows["1. attention uploaded (bytes)"]["distributed"] == 0
    assert rows["1. attention uploaded (bytes)"]["centralized"] > 0
    # Network load: no crawling in the distributed design.
    assert rows["server crawl fetches"]["distributed"] == 0
    assert rows["server crawl fetches"]["centralized"] > 0
    # Both designs still place subscriptions and deliver events (edges 3/4
    # of Figure 1 = edges 1/2 of Figure 2).
    assert rows["3. sub/unsub operations"]["centralized"] > 0
    assert rows["3. sub/unsub operations"]["distributed"] > 0
    assert rows["4. events delivered"]["distributed"] > 0
    # Collaborative exchange gossips recommendations, never attention.
    assert rows["peer gossip messages"]["distributed"] >= 0
