"""Benchmark E2 — content-based video news recommendation (paper §3.3).

Regenerates the paper's term-count sweep: the top-N Offer-Weight terms from
a user's browsing history form a BM25 query over the 500-story video
archive, and the precision improvement over the original airing order is
reported for N between 5 and 500.  The paper reports +12% at N=5 and a peak
of +34% at N=30, positive for every N.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.content_video import DEFAULT_TERM_COUNTS, run_content_video_experiment


def test_e2_precision_improvement_sweep(benchmark):
    result = run_once(
        benchmark,
        run_content_video_experiment,
        term_counts=DEFAULT_TERM_COUNTS,
        browsing_scale=0.15,
    )

    print()
    print(result.summary())

    rows = {int(row["n_terms"]): row for row in result.rows}
    # Shape assertions mirroring the paper:
    # the attention-derived query improves precision at the paper's optimum ...
    assert rows[30]["improvement"] > 0.05
    # ... a handful of terms already helps but less than the optimum region ...
    assert rows[5]["improvement"] <= max(row["improvement"] for row in result.rows)
    # ... and the peak lies at an intermediate N, not at the largest query.
    best_n = max(rows, key=lambda n: rows[n]["improvement"])
    assert 10 <= best_n <= 200
    assert rows[500]["improvement"] <= rows[best_n]["improvement"]
    # Every sweep point re-ranks the full archive.
    assert all(row["baseline_precision_at_k"] > 0 for row in result.rows)
