#!/usr/bin/env python
"""Reduced-scale memory/latency budget check for the scale machinery.

CI smoke for the million-subscription engine (PR 6) at a scale a shared
runner can afford: build ``--subs`` subscriptions through ``add_many``,
enforce a hard RSS ceiling on the resident population, check match and
churn latency budgets, then run the batch-vs-loop advertisement check on
the bench topology (a ``--brokers``-node line) and enforce a minimum
batch speedup, and finally the batched-vs-sequential routed publish
check (PR 8) with a minimum data-plane throughput speedup.  Exits
non-zero on any violated budget, so the CI job fails loudly instead of
letting scale regressions rot.

Usage::

    python benchmarks/check_scale_budget.py --subs 100000 --max-rss-mb 500
    python benchmarks/check_scale_budget.py --record budget.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.cluster.routing import RoutingFabric  # noqa: E402
from repro.experiments.substrate import make_subscription  # noqa: E402
from repro.pubsub.broker import Broker  # noqa: E402
from repro.pubsub.events import Event  # noqa: E402
from repro.pubsub.matching import MatchingEngine  # noqa: E402
from repro.pubsub.subscriptions import predicate_pool  # noqa: E402
from repro.sim.rng import SeededRNG  # noqa: E402


def rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def check_engine_budget(subs: int, results: dict) -> None:
    """Resident-population build: RSS, match and churn latency."""
    topics = [f"topic{i:02d}" for i in range(50)]
    rng = SeededRNG(71)
    subscriptions = [
        make_subscription(rng, topics, f"user{i % 200:03d}") for i in range(subs)
    ]
    engine = MatchingEngine()
    start = time.perf_counter()
    engine.add_many(subscriptions)
    build_s = time.perf_counter() - start
    assert len(engine) == subs

    event = Event(
        event_type="news.story", attributes={"topic": topics[7], "priority": 3}
    )
    start = time.perf_counter()
    rounds = 50
    for _ in range(rounds):
        matched = engine.match(event)
    match_ms = (time.perf_counter() - start) / rounds * 1e3
    assert matched

    churn = [make_subscription(rng, topics, f"churn{i % 50:02d}") for i in range(2_000)]
    start = time.perf_counter()
    for subscription in churn:
        engine.add(subscription)
    subscribe_us = (time.perf_counter() - start) / len(churn) * 1e6
    start = time.perf_counter()
    for subscription in churn:
        engine.remove(subscription.subscription_id)
    unsubscribe_us = (time.perf_counter() - start) / len(churn) * 1e6

    stats = engine.column_stats()
    results["engine"] = {
        "subscriptions": subs,
        "build_s": round(build_s, 3),
        "rss_mb": round(rss_mb(), 1),
        "match_ms": round(match_ms, 3),
        "subscribe_us": round(subscribe_us, 3),
        "unsubscribe_us": round(unsubscribe_us, 3),
        "distinct_shapes": stats["distinct_shapes"],
        "pool": predicate_pool().stats(),
    }


def check_batch_budget(subs: int, brokers: int, results: dict) -> None:
    """Batch-vs-loop advertisement on the bench topology (line)."""

    def build_fabric() -> RoutingFabric:
        fabric = RoutingFabric()
        for index in range(brokers):
            fabric.add_node(f"b{index}", Broker(f"b{index}"))
        for index in range(brokers - 1):
            fabric.connect(f"b{index}", f"b{index + 1}")
        return fabric

    topics = [f"topic{i:02d}" for i in range(50)]
    rng = SeededRNG(37)
    subscriptions = [
        make_subscription(rng, topics, f"solo{i:06d}") for i in range(subs)
    ]

    # The loop fabric's routing state is millions of container objects;
    # release it (and collect) before timing the batch so cyclic-GC
    # passes over the dead heap do not get billed to the batch.
    loop_fabric = build_fabric()
    gc.collect()
    start = time.perf_counter()
    for subscription in subscriptions:
        loop_fabric.subscribe_at("b0", subscription)
    loop_s = time.perf_counter() - start
    loop_state = loop_fabric.total_routing_state()
    del loop_fabric
    gc.collect()

    batch_fabric = build_fabric()
    start = time.perf_counter()
    batch_fabric.subscribe_many_at("b0", subscriptions)
    batch_s = time.perf_counter() - start
    assert batch_fabric.total_routing_state() == loop_state

    results["batch"] = {
        "subscriptions": subs,
        "brokers": brokers,
        "loop_s": round(loop_s, 3),
        "batch_s": round(batch_s, 3),
        "speedup": round(loop_s / batch_s, 2) if batch_s else None,
    }


def check_publish_budget(events: int, results: dict) -> None:
    """Batched-vs-sequential routed publish on the bench line (PR 8).

    A reduced copy of ``bench_hotpaths.test_hp_routed_publish_many``:
    the sequential pass publishes each event at a distinct sim time (one
    service cycle and one forward message per event), the batched pass
    feeds the same events through ``publish_many`` in 512-event batches.
    Delivery counts must agree; the throughput ratio is budgeted.
    """
    from repro.cluster.broker_cluster import (  # noqa: E402
        BrokerCluster,
        build_cluster_topology,
    )
    from repro.experiments.substrate import make_event  # noqa: E402

    topics = [f"topic{i:03d}" for i in range(1_000)]
    rng = SeededRNG(23)
    subscriptions = [
        make_subscription(rng, topics, f"user{i % 200}") for i in range(6_000)
    ]
    events_list = [make_event(rng, topics, timestamp=float(i)) for i in range(events)]
    cluster = BrokerCluster(service_rate=1e9, batch_size=64, link_latency=0.001)
    names = build_cluster_topology("line", 3, cluster)
    placement = SeededRNG(41)
    for subscription in subscriptions:
        cluster.subscribe(names[placement.randint(0, 2)], subscription)
    delivered = cluster.metrics.counter("cluster.deliveries")

    base = cluster.sim.now
    gc.collect()
    start = time.perf_counter()
    for index, event in enumerate(events_list):
        cluster.publish_at(base + index * 1e-5, names[index % 3], event)
    cluster.run()
    sequential_s = time.perf_counter() - start
    sequential_deliveries = delivered.value

    gc.collect()
    start = time.perf_counter()
    for index, chunk_start in enumerate(range(0, len(events_list), 512)):
        cluster.publish_many(
            names[index % 3], events_list[chunk_start : chunk_start + 512]
        )
    cluster.run()
    batched_s = time.perf_counter() - start
    assert delivered.value - sequential_deliveries == sequential_deliveries

    results["publish"] = {
        "events": events,
        "sequential_s": round(sequential_s, 3),
        "batched_s": round(batched_s, 3),
        "sequential_us_per_event": round(sequential_s / events * 1e6, 2),
        "batched_us_per_event": round(batched_s / events * 1e6, 2),
        "speedup": round(sequential_s / batched_s, 2) if batched_s else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subs", type=int, default=100_000,
                        help="resident population for the engine check")
    parser.add_argument("--batch-subs", type=int, default=None,
                        help="batch-vs-loop population (default: --subs)")
    parser.add_argument("--brokers", type=int, default=48,
                        help="line length for the batch check (bench topology)")
    parser.add_argument("--max-rss-mb", type=float, default=500.0,
                        help="hard ceiling on resident memory after the build")
    parser.add_argument("--max-match-ms", type=float, default=250.0,
                        help="ceiling on single-event match latency")
    parser.add_argument("--max-subscribe-us", type=float, default=250.0,
                        help="ceiling on per-subscription churn-in latency")
    parser.add_argument("--min-batch-speedup", type=float, default=3.0,
                        help="floor on the batch-vs-loop speedup "
                        "(the full-scale target is 5x; CI keeps noise margin)")
    parser.add_argument("--publish-events", type=int, default=10_000,
                        help="event count for the batched-publish check")
    parser.add_argument("--min-publish-speedup", type=float, default=2.0,
                        help="floor on the batched-vs-sequential routed publish "
                        "speedup (the bench target is 3x; CI keeps noise margin)")
    parser.add_argument("--record", help="write the measurements to this JSON file")
    args = parser.parse_args()

    results: dict = {}
    check_engine_budget(args.subs, results)
    check_batch_budget(
        args.batch_subs if args.batch_subs is not None else args.subs,
        args.brokers,
        results,
    )
    check_publish_budget(args.publish_events, results)

    budgets = [
        ("engine rss_mb", results["engine"]["rss_mb"], "<=", args.max_rss_mb),
        ("engine match_ms", results["engine"]["match_ms"], "<=", args.max_match_ms),
        ("engine subscribe_us", results["engine"]["subscribe_us"], "<=",
         args.max_subscribe_us),
        ("batch speedup", results["batch"]["speedup"], ">=", args.min_batch_speedup),
        ("publish speedup", results["publish"]["speedup"], ">=",
         args.min_publish_speedup),
    ]
    failures = []
    for name, value, op, limit in budgets:
        ok = value <= limit if op == "<=" else value >= limit
        print(f"{'PASS' if ok else 'FAIL'}  {name} = {value} (budget {op} {limit})")
        if not ok:
            failures.append(name)

    if args.record:
        with open(args.record, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded measurements to {args.record}")

    if failures:
        print(f"budget violations: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
