#!/usr/bin/env python
"""Reduced-scale memory/latency budget check for the scale machinery.

CI smoke for the million-subscription engine (PR 6) at a scale a shared
runner can afford: build ``--subs`` subscriptions through ``add_many``,
enforce a hard RSS ceiling on the resident population, check match and
churn latency budgets, then run the batch-vs-loop advertisement check on
the bench topology (a ``--brokers``-node line) and enforce a minimum
batch speedup.  Exits non-zero on any violated budget, so the CI job
fails loudly instead of letting scale regressions rot.

Usage::

    python benchmarks/check_scale_budget.py --subs 100000 --max-rss-mb 500
    python benchmarks/check_scale_budget.py --record budget.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.cluster.routing import RoutingFabric  # noqa: E402
from repro.experiments.substrate import make_subscription  # noqa: E402
from repro.pubsub.broker import Broker  # noqa: E402
from repro.pubsub.events import Event  # noqa: E402
from repro.pubsub.matching import MatchingEngine  # noqa: E402
from repro.pubsub.subscriptions import predicate_pool  # noqa: E402
from repro.sim.rng import SeededRNG  # noqa: E402


def rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def check_engine_budget(subs: int, results: dict) -> None:
    """Resident-population build: RSS, match and churn latency."""
    topics = [f"topic{i:02d}" for i in range(50)]
    rng = SeededRNG(71)
    subscriptions = [
        make_subscription(rng, topics, f"user{i % 200:03d}") for i in range(subs)
    ]
    engine = MatchingEngine()
    start = time.perf_counter()
    engine.add_many(subscriptions)
    build_s = time.perf_counter() - start
    assert len(engine) == subs

    event = Event(
        event_type="news.story", attributes={"topic": topics[7], "priority": 3}
    )
    start = time.perf_counter()
    rounds = 50
    for _ in range(rounds):
        matched = engine.match(event)
    match_ms = (time.perf_counter() - start) / rounds * 1e3
    assert matched

    churn = [make_subscription(rng, topics, f"churn{i % 50:02d}") for i in range(2_000)]
    start = time.perf_counter()
    for subscription in churn:
        engine.add(subscription)
    subscribe_us = (time.perf_counter() - start) / len(churn) * 1e6
    start = time.perf_counter()
    for subscription in churn:
        engine.remove(subscription.subscription_id)
    unsubscribe_us = (time.perf_counter() - start) / len(churn) * 1e6

    stats = engine.column_stats()
    results["engine"] = {
        "subscriptions": subs,
        "build_s": round(build_s, 3),
        "rss_mb": round(rss_mb(), 1),
        "match_ms": round(match_ms, 3),
        "subscribe_us": round(subscribe_us, 3),
        "unsubscribe_us": round(unsubscribe_us, 3),
        "distinct_shapes": stats["distinct_shapes"],
        "pool": predicate_pool().stats(),
    }


def check_batch_budget(subs: int, brokers: int, results: dict) -> None:
    """Batch-vs-loop advertisement on the bench topology (line)."""

    def build_fabric() -> RoutingFabric:
        fabric = RoutingFabric()
        for index in range(brokers):
            fabric.add_node(f"b{index}", Broker(f"b{index}"))
        for index in range(brokers - 1):
            fabric.connect(f"b{index}", f"b{index + 1}")
        return fabric

    topics = [f"topic{i:02d}" for i in range(50)]
    rng = SeededRNG(37)
    subscriptions = [
        make_subscription(rng, topics, f"solo{i:06d}") for i in range(subs)
    ]

    # The loop fabric's routing state is millions of container objects;
    # release it (and collect) before timing the batch so cyclic-GC
    # passes over the dead heap do not get billed to the batch.
    loop_fabric = build_fabric()
    gc.collect()
    start = time.perf_counter()
    for subscription in subscriptions:
        loop_fabric.subscribe_at("b0", subscription)
    loop_s = time.perf_counter() - start
    loop_state = loop_fabric.total_routing_state()
    del loop_fabric
    gc.collect()

    batch_fabric = build_fabric()
    start = time.perf_counter()
    batch_fabric.subscribe_many_at("b0", subscriptions)
    batch_s = time.perf_counter() - start
    assert batch_fabric.total_routing_state() == loop_state

    results["batch"] = {
        "subscriptions": subs,
        "brokers": brokers,
        "loop_s": round(loop_s, 3),
        "batch_s": round(batch_s, 3),
        "speedup": round(loop_s / batch_s, 2) if batch_s else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subs", type=int, default=100_000,
                        help="resident population for the engine check")
    parser.add_argument("--batch-subs", type=int, default=None,
                        help="batch-vs-loop population (default: --subs)")
    parser.add_argument("--brokers", type=int, default=48,
                        help="line length for the batch check (bench topology)")
    parser.add_argument("--max-rss-mb", type=float, default=500.0,
                        help="hard ceiling on resident memory after the build")
    parser.add_argument("--max-match-ms", type=float, default=250.0,
                        help="ceiling on single-event match latency")
    parser.add_argument("--max-subscribe-us", type=float, default=250.0,
                        help="ceiling on per-subscription churn-in latency")
    parser.add_argument("--min-batch-speedup", type=float, default=3.0,
                        help="floor on the batch-vs-loop speedup "
                        "(the full-scale target is 5x; CI keeps noise margin)")
    parser.add_argument("--record", help="write the measurements to this JSON file")
    args = parser.parse_args()

    results: dict = {}
    check_engine_budget(args.subs, results)
    check_batch_budget(
        args.batch_subs if args.batch_subs is not None else args.subs,
        args.brokers,
        results,
    )

    budgets = [
        ("engine rss_mb", results["engine"]["rss_mb"], "<=", args.max_rss_mb),
        ("engine match_ms", results["engine"]["match_ms"], "<=", args.max_match_ms),
        ("engine subscribe_us", results["engine"]["subscribe_us"], "<=",
         args.max_subscribe_us),
        ("batch speedup", results["batch"]["speedup"], ">=", args.min_batch_speedup),
    ]
    failures = []
    for name, value, op, limit in budgets:
        ok = value <= limit if op == "<=" else value >= limit
        print(f"{'PASS' if ok else 'FAIL'}  {name} = {value} (budget {op} {limit})")
        if not ok:
            failures.append(name)

    if args.record:
        with open(args.record, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded measurements to {args.record}")

    if failures:
        print(f"budget violations: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
