"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's reported results (see the
per-experiment index in DESIGN.md).  The heavy end-to-end drivers run a
single round (``rounds=1``) because the quantity of interest is the
experiment's *output table*, which every benchmark prints, not its wall
clock time; the substrate micro-benchmarks use normal repeated timing.

``REPRO_BENCH_SCALE`` (default ``0.25``) scales the browsing-study
workloads; set it to ``1.0`` to run E1 at the paper's full ten-week,
five-user size.
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float = 0.25) -> float:
    """Workload scale factor for the browsing-study benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run an end-to-end experiment driver exactly once under the benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
