"""Benchmark X4 — pull-based polling vs the WAIF FeedEvents push proxy (§5.3).

Regenerates the motivation cited from Liu et al. [13]: with direct polling,
origin-server load grows linearly with the number of subscribed clients,
while the push proxy polls each feed once per interval regardless of how
many users subscribed, delivering the same updates.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.push_pull import run_push_pull_experiment


def test_x4_origin_server_load_push_vs_pull(benchmark):
    result = run_once(
        benchmark,
        run_push_pull_experiment,
        client_counts=(1, 5, 10, 25, 50),
        num_feeds=20,
        duration_hours=24.0,
    )

    print()
    print(result.summary())

    rows = {int(row["clients"]): row for row in result.rows}
    one, fifty = rows[1], rows[50]
    # Direct polling load grows linearly with clients ...
    assert fifty["direct_origin_requests"] >= 45 * one["direct_origin_requests"]
    # ... while the proxy's origin load is independent of the client count.
    assert fifty["proxy_origin_requests"] == one["proxy_origin_requests"]
    # The proxy still delivers every update to every subscriber.
    assert fifty["proxy_updates_delivered"] == fifty["direct_updates_seen"]
    # At 50 clients the origin-request reduction is ~50x.
    assert fifty["request_reduction"] >= 40
