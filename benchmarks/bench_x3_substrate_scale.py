"""Benchmark X3 — publish-subscribe substrate scalability (§5.3).

Two parts:

* matching throughput of the counting-based engine as the number of active
  subscriptions grows (this one is a true timing micro-benchmark);
* event dissemination cost in the broker overlay under content-based
  routing versus flooding, and on the SCRIBE-style topic substrate.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.substrate import (
    make_event,
    make_subscription,
    run_matching_scalability,
    run_routing_scalability,
)
from repro.pubsub.matching import MatchingEngine
from repro.sim.rng import SeededRNG


def test_x3a_matching_throughput_sweep(benchmark):
    result = run_once(
        benchmark,
        run_matching_scalability,
        subscription_counts=(100, 1000, 5000, 20000),
        events_per_point=1000,
    )
    print()
    print(result.summary())

    rows = {row["subscriptions"]: row for row in result.rows}
    assert all(row["events_per_second"] > 0 for row in result.rows)
    # Matching stays usable (well above publication rates in the paper's
    # setting) even with 20k active subscriptions.
    assert rows[20000]["events_per_second"] > 50
    # More subscriptions match more often, so per-event work grows.
    assert rows[20000]["matches_per_event"] >= rows[100]["matches_per_event"]


def test_x3a_single_event_match_latency(benchmark):
    """Microbenchmark: one event matched against 10k indexed subscriptions."""
    rng = SeededRNG(23)
    topics = [f"topic{i:03d}" for i in range(50)]
    engine = MatchingEngine()
    for index in range(10_000):
        engine.add(make_subscription(rng, topics, subscriber=f"user{index % 200}"))
    event = make_event(rng, topics, timestamp=0.0)

    matched = benchmark(lambda: engine.match(event))
    assert isinstance(matched, list)


def test_x3b_routing_vs_flooding_vs_scribe(benchmark):
    result = run_once(
        benchmark,
        run_routing_scalability,
        depth=4,
        fanout=3,
        subscribers=80,
        publications=400,
    )
    print()
    print(result.summary())

    rows = {row["substrate"]: row for row in result.rows}
    routed = rows["content-based routing"]
    flooded = rows["flooding baseline"]
    scribe = rows["scribe topic multicast"]
    # Content-based routing delivers exactly what flooding delivers ...
    assert routed["deliveries"] == flooded["deliveries"]
    # ... while visiting strictly fewer brokers per publication.
    assert routed["brokers_visited_per_event"] < flooded["brokers_visited_per_event"]
    # SCRIBE's per-topic trees also stay well below flooding cost.
    assert scribe["brokers_visited_per_event"] < flooded["brokers_visited_per_event"]
