"""Benchmark C1 — cluster-layer sweep (shards × batch size).

Runs the ``repro.experiments.cluster_scale`` driver once and checks the
structural properties that must hold at any machine speed: sharded
matching is verified against the naive oracle (the driver raises on any
mismatch), every configuration delivers the same events, and batching
amortizes the per-cycle service overhead in simulated time (which is
hardware-independent, so it is safe to assert in CI).
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, run_once
from repro.experiments.cluster_scale import run_cluster_scale, run_routed_cluster_scale


def test_c1_cluster_scale_sweep(benchmark):
    result = run_once(
        benchmark,
        run_cluster_scale,
        scale=max(0.1, bench_scale()),
        verify=True,
    )
    print()
    print(result.summary())

    assert result.parameters["verified"] is True
    deliveries = {row["deliveries"] for row in result.rows}
    # Sharding and batching must not change what gets delivered.
    assert len(deliveries) == 1
    rows = {(row["shards"], row["batch_size"]): row for row in result.rows}
    for shards in sorted({s for s, _ in rows}):
        batch_sizes = sorted(b for s, b in rows if s == shards)
        unbatched = rows[(shards, batch_sizes[0])]
        batched = rows[(shards, batch_sizes[-1])]
        # Simulated time: batching amortizes the per-cycle overhead, so
        # large batches sustain at least the unbatched throughput and do
        # not increase mean queue delay under the same arrival process.
        assert batched["sim_throughput_eps"] >= unbatched["sim_throughput_eps"]
        assert batched["mean_delay_ms"] <= unbatched["mean_delay_ms"]


def test_c1b_routed_cluster_sweep(benchmark):
    result = run_once(
        benchmark,
        run_routed_cluster_scale,
        scale=max(0.1, bench_scale()),
        verify=True,
    )
    print()
    print(result.summary())

    assert result.parameters["verified"] is True
    # Routing must not change what gets delivered: every (topology, shards,
    # batch) point delivers the oracle set, hence the same total count.
    deliveries = {row["deliveries"] for row in result.rows}
    assert len(deliveries) == 1
    by_topology = {}
    for row in result.rows:
        by_topology.setdefault(row["topology"], []).append(row)
    # Structural, machine-independent facts: the star bounds every path at
    # two hops, the line pays up to the full diameter.
    assert all(row["max_hops"] <= 2 for row in by_topology["star"])
    line_max = max(row["max_hops"] for row in by_topology["line"])
    assert line_max >= max(row["max_hops"] for row in by_topology["star"])
    for rows in by_topology.values():
        for row in rows:
            assert row["forwards_per_event"] > 0
            assert row["mean_e2e_delay_ms"] > 0
