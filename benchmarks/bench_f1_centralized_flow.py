"""Benchmark F1 — message flows of the centralized architecture (Figure 1).

Regenerates the per-edge traffic of Figure 1: (1) attention uploads from
the browser extension to the Reef server, (2) recommendations back to the
extension, (3) sub/unsub operations against the publish-subscribe
substrate, (4) events delivered from the substrate — plus the crawl traffic
and the privacy cost (bytes of attention centralized) that motivate the
distributed design.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.centralized import CentralizedReef
from repro.core.config import ReefConfig
from repro.datasets.browsing import BrowsingDatasetConfig, build_browsing_dataset
from repro.experiments.harness import format_table


def _run_centralized(scale: float):
    config = BrowsingDatasetConfig().scaled(scale)
    dataset = build_browsing_dataset(config)
    reef = CentralizedReef(
        dataset.web, dataset.users, dataset.rng, config=ReefConfig(), http=dataset.http
    )
    reef.run(days=config.duration_days)
    return reef, config


def test_f1_centralized_message_flows(benchmark, scale):
    reef, config = run_once(benchmark, _run_centralized, min(scale, 0.25))
    flows = reef.flow_statistics()
    recommendations = reef.recommendation_statistics(config.duration_days)

    rows = [
        {"edge": "1. attention (client->server) messages", "value": flows["attention_messages"]},
        {"edge": "1. attention (client->server) bytes", "value": flows["attention_bytes"]},
        {"edge": "2. recommendations (server->client)", "value": flows["recommendation_messages"]},
        {"edge": "3. sub/unsub (client->substrate)", "value": flows["sub_unsub_messages"]},
        {"edge": "4. events (substrate->client)", "value": flows["event_deliveries"]},
        {"edge": "crawl fetches by the server", "value": flows["crawler_fetches"]},
        {"edge": "recommendations per user per day", "value": recommendations["recommendations_per_user_per_day"]},
    ]
    print()
    print(format_table(rows))

    # Figure 1's structure: every edge carries traffic in the centralized design.
    assert flows["attention_messages"] > 0
    assert flows["attention_bytes"] > 0
    assert flows["recommendation_messages"] > 0
    assert flows["sub_unsub_messages"] > 0
    assert flows["event_deliveries"] > 0
    assert flows["crawler_fetches"] > 0
    # Subscriptions are only ever placed in response to recommendations.
    assert flows["sub_unsub_messages"] <= flows["recommendation_messages"] + len(reef.clients)
