"""Benchmark X1 — update volume and attention-based filtering (paper §3.2).

The paper observes that the discovered feeds produce "enough ... to
overwhelm any user with updates" and proposes using attention data for
filtering updates and removing subscriptions.  This benchmark runs the same
workload with the unsubscribe policy disabled and enabled and reports the
delivered update volume, the number of automatic unsubscriptions and the
click-through rate of what remains.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.filtering import run_update_filtering_experiment


def test_x1_attention_based_update_filtering(benchmark, scale):
    result = run_once(
        benchmark,
        run_update_filtering_experiment,
        scale=min(scale, 0.12),
        max_updates_per_day=2.0,
        unsubscribe_after_ignored=5,
    )

    print()
    print(result.summary())

    rows = {row["metric"]: row for row in result.rows}
    # Without filtering, subscriptions accumulate and keep delivering.
    assert rows["updates_per_user_per_day"]["unfiltered"] > 0
    assert rows["auto_unsubscriptions"]["unfiltered"] == 0
    # The attention-driven policy removes subscriptions and reduces volume.
    assert rows["auto_unsubscriptions"]["filtered"] > 0
    assert (
        rows["updates_per_user_per_day"]["filtered"]
        <= rows["updates_per_user_per_day"]["unfiltered"]
    )
    assert (
        rows["active_subscriptions_per_user"]["filtered"]
        <= rows["active_subscriptions_per_user"]["unfiltered"]
    )
    # Filtering should not collapse engagement with what remains.
    assert rows["click_through_rate"]["filtered"] >= rows["click_through_rate"]["unfiltered"] * 0.8
