"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation; these quantify the impact of the
reproduction's own knobs on the E2 pipeline (term-frequency modification of
the Offer Weight, ubiquitous-term filter, query weighting, BM25 vs TF-IDF).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_offer_weight_ablation, run_query_weighting_ablation
from repro.experiments.content_video import build_content_video_setup


@pytest.fixture(scope="module")
def e2_setup():
    return build_content_video_setup(browsing_scale=0.12, seed=30042006)


def test_ablation_offer_weight_variants(benchmark, e2_setup):
    result = run_once(benchmark, run_offer_weight_ablation, setup=e2_setup)
    print()
    print(result.summary())

    rows = result.rows
    # The query always fills its N-term budget when the filter is off.
    unfiltered = [row for row in rows if row["max_attention_fraction"] == 1.0]
    assert all(row["query_terms_used"] > 0 for row in unfiltered)
    # With the ubiquitous-term filter enabled the best configuration is at
    # least as good as the best unfiltered one (everyday words never help).
    filtered_best = max(
        row["improvement"] for row in rows if row["max_attention_fraction"] < 1.0
    )
    unfiltered_best = max(row["improvement"] for row in unfiltered)
    assert filtered_best >= unfiltered_best - 0.05


def test_ablation_query_weighting_and_ranker(benchmark, e2_setup):
    result = run_once(benchmark, run_query_weighting_ablation, setup=e2_setup)
    print()
    print(result.summary())

    for row in result.rows:
        # Every variant produces a finite improvement value for every N.
        assert isinstance(row["bm25_unweighted"], float)
        assert isinstance(row["bm25_weighted"], float)
        assert isinstance(row["tfidf_unweighted"], float)
    by_n = {int(row["n_terms"]): row for row in result.rows}
    # At the paper's optimum N the BM25 pipeline is no worse than TF-IDF.
    assert by_n[30]["bm25_unweighted"] >= by_n[30]["tfidf_unweighted"] - 0.05
