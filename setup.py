"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that editable installs also work in environments where the
``wheel`` package (needed for PEP 660 editable wheels) is unavailable, via
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
